//! Co-occurrence counting and the Jaccard similarity matrix (Eq. 4/5).
//!
//! `J(d_i, d_j) = |(d_i, d_j)| / (|d_i| + |d_j| − |(d_i, d_j)|)`, where
//! `|(d_i, d_j)|` counts requests in which both items appear and `|d_i|`
//! counts requests containing `d_i`. The paper chooses Jaccard over raw
//! co-occurrence "since we expect the DP_Greedy algorithm to perform well
//! when both the frequency and the Jaccard similarity for two data items
//! are high".

use mcs_model::{ItemId, RequestSeq};

/// Raw co-occurrence statistics of a request sequence: per-item request
/// counts and upper-triangular pair counts.
///
/// ```
/// use mcs_correlation::CoOccurrence;
/// use mcs_model::{ItemId, RequestSeqBuilder};
///
/// let seq = RequestSeqBuilder::new(2, 2)
///     .push(0u32, 1.0, [0, 1])
///     .push(1u32, 2.0, [0])
///     .build()
///     .unwrap();
/// let co = CoOccurrence::from_sequence(&seq);
/// assert_eq!(co.pair_count(ItemId(0), ItemId(1)), 1);
/// assert!((co.jaccard(ItemId(0), ItemId(1)) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoOccurrence {
    k: usize,
    /// `|d_i|` — number of requests containing item `i`.
    item_counts: Vec<usize>,
    /// Upper-triangular pair counts, row-major: entry for `(i, j)` with
    /// `i < j` lives at `tri_index(i, j)`.
    pair_counts: Vec<usize>,
}

#[inline]
fn tri_index(k: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < k);
    // Offset of row i in the packed upper triangle, then the column.
    i * k - i * (i + 1) / 2 + (j - i - 1)
}

/// Request count above which [`CoOccurrence::from_sequence`] switches to
/// the sharded parallel path (when more than one worker thread is
/// available). Counting is pure integer addition, so the two paths are
/// bit-identical; the threshold only avoids thread-spawn overhead on the
/// small sequences that dominate tests and the paper example.
pub const PARALLEL_THRESHOLD: usize = 4096;

impl CoOccurrence {
    /// Counts item and pair occurrences over a request sequence
    /// (`O(Σ|D_i|²)` — request item sets are tiny in practice).
    ///
    /// Two kernels compute the same integers (selected by the
    /// `MCS_PHASE1` knob, `auto` by default — see [`crate::incidence`]):
    ///
    /// * the **per-event** kernel increments the triangle per pair-event,
    ///   sharding large sequences across worker threads (integer merge —
    ///   bit-identical to the serial pass for any shard count);
    /// * the **bitset** kernel builds word-rows of request incidence and
    ///   fills the triangle with `popcount(and)` chains.
    ///
    /// Both produce equal counts for every sequence (asserted in tests),
    /// so kernel choice can never change a figure. `MCS_THREADS=1`
    /// forces every parallel path serial.
    pub fn from_sequence(seq: &RequestSeq) -> Self {
        use crate::incidence::{bitset_profitable_dense, phase1_kernel, Phase1Kernel};
        let bitset = match phase1_kernel() {
            Phase1Kernel::Bitset => true,
            Phase1Kernel::Hash => false,
            Phase1Kernel::Auto => bitset_profitable_dense(seq),
        };
        if bitset {
            Self::from_sequence_bitset(seq)
        } else {
            Self::from_sequence_events(seq)
        }
    }

    /// The per-event counting kernel with its serial/sharded dispatch —
    /// the historical `from_sequence` body.
    pub fn from_sequence_events(seq: &RequestSeq) -> Self {
        let threads = mcs_model::par::max_threads();
        if threads > 1 && seq.len() >= PARALLEL_THRESHOLD {
            Self::from_sequence_sharded(seq, threads)
        } else {
            Self::from_sequence_serial(seq)
        }
    }

    /// The bitset popcount kernel: builds a [`crate::BitsetIncidence`]
    /// and materialises the identical statistics from it.
    pub fn from_sequence_bitset(seq: &RequestSeq) -> Self {
        crate::incidence::BitsetIncidence::from_sequence(seq).to_cooccurrence()
    }

    /// Assembles statistics from raw counts (the bitset kernel's exit
    /// path). `triangle` is the packed upper triangle in `tri_index`
    /// order.
    pub(crate) fn from_raw(k: usize, item_counts: Vec<usize>, triangle: Vec<usize>) -> Self {
        debug_assert_eq!(item_counts.len(), k);
        debug_assert_eq!(triangle.len(), k * k.saturating_sub(1) / 2);
        CoOccurrence {
            k,
            item_counts,
            pair_counts: triangle,
        }
    }

    /// The serial single-pass count (the reference the sharded path must
    /// reproduce exactly).
    pub fn from_sequence_serial(seq: &RequestSeq) -> Self {
        let k = seq.items() as usize;
        let mut co = CoOccurrence::empty(k);
        co.count_requests(seq.requests());
        co
    }

    /// Sharded count: splits the sequence into at most `shards`
    /// contiguous ranges, counts each on its own worker thread
    /// ([`mcs_model::par::par_map`]), and merges by summation.
    pub fn from_sequence_sharded(seq: &RequestSeq, shards: usize) -> Self {
        let k = seq.items() as usize;
        let ranges = mcs_model::par::shard_ranges(seq.len(), shards);
        if ranges.len() <= 1 {
            return Self::from_sequence_serial(seq);
        }
        let partials = mcs_model::par::par_map(&ranges, |&(start, end)| {
            let mut co = CoOccurrence::empty(k);
            co.count_requests(&seq.requests()[start..end]);
            co
        });
        let mut merged = CoOccurrence::empty(k);
        for p in &partials {
            merged.merge(p);
        }
        merged
    }

    fn empty(k: usize) -> Self {
        CoOccurrence {
            k,
            item_counts: vec![0usize; k],
            pair_counts: vec![0usize; k * (k.saturating_sub(1)) / 2],
        }
    }

    fn count_requests(&mut self, requests: &[mcs_model::Request]) {
        let k = self.k;
        for r in requests {
            for (a_pos, &a) in r.items.iter().enumerate() {
                self.item_counts[a.index()] += 1;
                for &b in &r.items[a_pos + 1..] {
                    // Builder guarantees sorted, duplicate-free item lists.
                    self.pair_counts[tri_index(k, a.index(), b.index())] += 1;
                }
            }
        }
    }

    /// Adds another shard's counts into `self` (shards partition the
    /// request list, so plain summation merges them exactly).
    fn merge(&mut self, other: &CoOccurrence) {
        debug_assert_eq!(self.k, other.k);
        for (a, b) in self.item_counts.iter_mut().zip(&other.item_counts) {
            *a += b;
        }
        for (a, b) in self.pair_counts.iter_mut().zip(&other.pair_counts) {
            *a += b;
        }
    }

    /// Bytes held by the dense upper-triangular pair table — the
    /// `k·(k−1)/2` allocation the sparse path avoids (reported by
    /// `bench_perf`).
    pub fn pair_table_bytes(&self) -> usize {
        self.pair_counts.len() * std::mem::size_of::<usize>()
    }

    /// Number of items `k`.
    #[inline]
    pub fn items(&self) -> usize {
        self.k
    }

    /// `|d_i|` — requests containing `item`.
    #[inline]
    pub fn count(&self, item: ItemId) -> usize {
        self.item_counts[item.index()]
    }

    /// `|(d_i, d_j)|` — requests containing both items (symmetric;
    /// `i == j` returns `|d_i|`).
    pub fn pair_count(&self, a: ItemId, b: ItemId) -> usize {
        let (i, j) = (a.index(), b.index());
        match i.cmp(&j) {
            std::cmp::Ordering::Less => self.pair_counts[tri_index(self.k, i, j)],
            std::cmp::Ordering::Greater => self.pair_counts[tri_index(self.k, j, i)],
            std::cmp::Ordering::Equal => self.item_counts[i],
        }
    }

    /// Jaccard similarity of a pair per Eq. (5); `0` when neither item is
    /// ever requested (zero-union guard — never NaN).
    pub fn jaccard(&self, a: ItemId, b: ItemId) -> f64 {
        if a == b {
            // Eq. (4): the diagonal of the correlation matrix is 1.
            return 1.0;
        }
        crate::incidence::jaccard_from_counts(self.pair_count(a, b), self.count(a), self.count(b))
    }
}

/// The symmetric correlation matrix `A` of Eq. (4), materialised.
#[derive(Debug, Clone, PartialEq)]
pub struct JaccardMatrix {
    k: usize,
    /// Row-major `k×k` values; diagonal fixed at 1.
    values: Vec<f64>,
}

impl JaccardMatrix {
    /// Builds the full matrix from co-occurrence statistics.
    pub fn from_cooccurrence(co: &CoOccurrence) -> Self {
        let k = co.items();
        let mut values = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                values[i * k + j] = co.jaccard(ItemId(i as u32), ItemId(j as u32));
            }
        }
        JaccardMatrix { k, values }
    }

    /// Convenience: straight from a request sequence.
    pub fn from_sequence(seq: &RequestSeq) -> Self {
        Self::from_cooccurrence(&CoOccurrence::from_sequence(seq))
    }

    /// Number of items `k`.
    #[inline]
    pub fn items(&self) -> usize {
        self.k
    }

    /// `A(i, j)`.
    #[inline]
    pub fn get(&self, a: ItemId, b: ItemId) -> f64 {
        self.values[a.index() * self.k + b.index()]
    }

    /// All `i < j` pairs with their similarity, in unspecified order.
    pub fn pairs(&self) -> Vec<(ItemId, ItemId, f64)> {
        let mut out = Vec::with_capacity(self.k * (self.k.saturating_sub(1)) / 2);
        for i in 0..self.k {
            for j in (i + 1)..self.k {
                out.push((
                    ItemId(i as u32),
                    ItemId(j as u32),
                    self.values[i * self.k + j],
                ));
            }
        }
        out
    }
}

mcs_model::impl_to_json!(CoOccurrence {
    k,
    item_counts,
    pair_counts
});
mcs_model::impl_to_json!(JaccardMatrix { k, values });

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{approx_eq, RequestSeqBuilder};

    fn paper_sequence() -> RequestSeq {
        RequestSeqBuilder::new(4, 2)
            .push(1u32, 0.5, [0])
            .push(2u32, 0.8, [0, 1])
            .push(3u32, 1.1, [1])
            .push(0u32, 1.4, [0, 1])
            .push(1u32, 2.6, [0])
            .push(1u32, 3.2, [1])
            .push(2u32, 4.0, [0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn paper_example_jaccard_is_three_sevenths() {
        let co = CoOccurrence::from_sequence(&paper_sequence());
        assert_eq!(co.count(ItemId(0)), 5);
        assert_eq!(co.count(ItemId(1)), 5);
        assert_eq!(co.pair_count(ItemId(0), ItemId(1)), 3);
        assert!(approx_eq(co.jaccard(ItemId(0), ItemId(1)), 3.0 / 7.0));
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let seq = RequestSeqBuilder::new(2, 3)
            .push(0u32, 1.0, [0, 1])
            .push(1u32, 2.0, [1, 2])
            .push(0u32, 3.0, [0, 1, 2])
            .push(1u32, 4.0, [0])
            .build()
            .unwrap();
        let m = JaccardMatrix::from_sequence(&seq);
        for i in 0..3 {
            assert!(approx_eq(m.get(ItemId(i), ItemId(i)), 1.0));
            for j in 0..3 {
                assert!(approx_eq(
                    m.get(ItemId(i), ItemId(j)),
                    m.get(ItemId(j), ItemId(i))
                ));
            }
        }
        // d1: requests {0,2,3}; d2: {0,1,2}; both: {0,2} → 2/4.
        assert!(approx_eq(m.get(ItemId(0), ItemId(1)), 0.5));
        // d1 & d3: both {2}, union {0,1,2,3} → 1/4.
        assert!(approx_eq(m.get(ItemId(0), ItemId(2)), 0.25));
    }

    #[test]
    fn never_requested_items_have_zero_similarity() {
        let seq = RequestSeqBuilder::new(1, 3)
            .push(0u32, 1.0, [0])
            .build()
            .unwrap();
        let co = CoOccurrence::from_sequence(&seq);
        assert!(approx_eq(co.jaccard(ItemId(1), ItemId(2)), 0.0));
        assert!(approx_eq(co.jaccard(ItemId(0), ItemId(1)), 0.0));
    }

    #[test]
    fn identical_access_patterns_have_similarity_one() {
        let seq = RequestSeqBuilder::new(1, 2)
            .push(0u32, 1.0, [0, 1])
            .push(0u32, 2.0, [0, 1])
            .build()
            .unwrap();
        let co = CoOccurrence::from_sequence(&seq);
        assert!(approx_eq(co.jaccard(ItemId(0), ItemId(1)), 1.0));
    }

    #[test]
    fn pair_counts_match_sequence_scan() {
        let co = CoOccurrence::from_sequence(&paper_sequence());
        let seq = paper_sequence();
        assert_eq!(
            co.pair_count(ItemId(0), ItemId(1)),
            seq.count_pair(ItemId(0), ItemId(1))
        );
        assert_eq!(
            co.pair_count(ItemId(1), ItemId(0)),
            seq.count_pair(ItemId(0), ItemId(1))
        );
    }

    #[test]
    fn sharded_counts_are_bit_identical_to_serial() {
        // A synthetic multi-item workload large enough for real shards.
        let mut b = RequestSeqBuilder::new(3, 8);
        let mut t = 0.0;
        for i in 0..500u64 {
            t += 0.5;
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let first = (h >> 7) as u32 % 8;
            let mut items = vec![first];
            if h % 3 != 0 {
                items.push((first + 1 + (h >> 13) as u32 % 7) % 8);
            }
            if h % 5 == 0 {
                let third = (first + 3) % 8;
                if !items.contains(&third) {
                    items.push(third);
                }
            }
            b = b.push((h % 3) as u32, t, items);
        }
        let seq = b.build().unwrap();
        let serial = CoOccurrence::from_sequence_serial(&seq);
        for shards in [1, 2, 3, 7, 16, 499, 500, 1000] {
            assert_eq!(
                CoOccurrence::from_sequence_sharded(&seq, shards),
                serial,
                "shards = {shards}"
            );
        }
        assert_eq!(CoOccurrence::from_sequence(&seq), serial);
        assert!(serial.pair_table_bytes() >= 8 * 7 / 2 * std::mem::size_of::<usize>());
    }

    #[test]
    fn zero_item_universe_is_empty_but_valid() {
        // k = 0: no requests can exist (every request needs a non-empty
        // item set), but the statistics must still construct cleanly.
        let seq = RequestSeqBuilder::new(2, 0).build().unwrap();
        let co = CoOccurrence::from_sequence(&seq);
        assert_eq!(co.items(), 0);
        assert_eq!(co.pair_table_bytes(), 0);
        let m = JaccardMatrix::from_cooccurrence(&co);
        assert_eq!(m.items(), 0);
        assert!(m.pairs().is_empty());
    }

    #[test]
    fn single_item_universe_has_no_pairs() {
        // k = 1: the pair triangle is empty; the diagonal is still 1.
        let seq = RequestSeqBuilder::new(1, 1)
            .push(0u32, 1.0, [0])
            .push(0u32, 2.0, [0])
            .build()
            .unwrap();
        let co = CoOccurrence::from_sequence(&seq);
        assert_eq!(co.items(), 1);
        assert_eq!(co.count(ItemId(0)), 2);
        assert_eq!(co.pair_count(ItemId(0), ItemId(0)), 2);
        assert_eq!(co.pair_table_bytes(), 0);
        assert!(approx_eq(co.jaccard(ItemId(0), ItemId(0)), 1.0));
        let m = JaccardMatrix::from_cooccurrence(&co);
        assert!(m.pairs().is_empty());
        assert!(approx_eq(m.get(ItemId(0), ItemId(0)), 1.0));
    }

    #[test]
    fn tri_index_is_a_bijection() {
        let k = 7;
        let mut seen = std::collections::HashSet::new();
        for i in 0..k {
            for j in (i + 1)..k {
                assert!(seen.insert(tri_index(k, i, j)));
            }
        }
        assert_eq!(seen.len(), k * (k - 1) / 2);
        assert_eq!(seen.iter().max(), Some(&(k * (k - 1) / 2 - 1)));
    }
}

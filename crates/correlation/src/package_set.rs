//! The unified Phase-1 outcome: packages of any size behind one type.
//!
//! Historically the crate grew two parallel surfaces for "which items are
//! served together": [`crate::matching::Packing`] (disjoint pairs +
//! singletons, the paper's Algorithm 1) and the former
//! `grouping::Grouping` (K-sets, the future-work extension). Every
//! consumer had to pick one and the engine registry could only see the
//! pairwise one. [`PackageSet`] closes that seam: packages of size ≥ 2 in
//! one list, unpacked singletons in another, an O(1) membership index,
//! and loss-free conversions to/from the pairwise [`Packing`] view.
//!
//! `Packing` remains the K = 2 *view* — its constructor, `is_packed`/
//! `partner` lookups, and JSON shape are untouched, so the pairwise
//! pipeline (and its byte-stable ledger output) is unaffected. The
//! `PackageSet` JSON rendering is versioned (a `version` field plus a
//! `packages` list) so downstream tooling can distinguish the K > 2
//! shape from the legacy pair shape.

use crate::matching::Packing;
use mcs_model::json::{Json, ToJson};
use mcs_model::ItemId;

/// Version tag of the [`PackageSet`] JSON shape.
pub const PACKAGE_SET_JSON_VERSION: u32 = 1;

/// Disjoint item packages of size ≥ 2 plus unpacked singletons — the
/// K-generalised `package_list` of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct PackageSet {
    /// Packages (each sorted ascending, size ≥ 2), in the order the
    /// producing matcher emitted them: acceptance order for the greedy
    /// pair matcher, fully sorted for the agglomerative K-matcher.
    pub packages: Vec<Vec<ItemId>>,
    /// Items served individually, ascending.
    pub singletons: Vec<ItemId>,
    /// The threshold `θ` the packing was computed under.
    pub theta: f64,
    /// Package index per item id, precomputed at construction so the
    /// per-request membership queries in Phase 2 are O(1). Private:
    /// derived from `packages`, rebuilt by [`PackageSet::new`].
    group_of: Vec<Option<u32>>,
}

impl PackageSet {
    /// Builds a package set, precomputing the O(1) membership index.
    /// Packages must be disjoint (each item in at most one package) and
    /// of size ≥ 2; members are sorted ascending here so callers can pass
    /// them in any order.
    pub fn new(mut packages: Vec<Vec<ItemId>>, singletons: Vec<ItemId>, theta: f64) -> Self {
        for p in &mut packages {
            debug_assert!(p.len() >= 2, "packages have at least two members");
            p.sort();
        }
        let max_id = packages
            .iter()
            .flatten()
            .chain(singletons.iter())
            .map(|it| it.index() + 1)
            .max()
            .unwrap_or(0);
        let mut group_of = vec![None; max_id];
        for (gi, p) in packages.iter().enumerate() {
            for &d in p {
                debug_assert!(group_of[d.index()].is_none(), "packages are disjoint");
                group_of[d.index()] = Some(gi as u32);
            }
        }
        PackageSet {
            packages,
            singletons,
            theta,
            group_of,
        }
    }

    /// The pairwise view as a package set (loss-free; preserves the
    /// acceptance order of the pairs).
    pub fn from_packing(packing: &Packing) -> Self {
        PackageSet::new(
            packing.pairs.iter().map(|&(a, b)| vec![a, b]).collect(),
            packing.singletons.clone(),
            packing.theta,
        )
    }

    /// Collapses back to the pairwise [`Packing`] view when every package
    /// is a pair (always true for a set produced with `max_group = 2`);
    /// `None` if any package has three or more members.
    pub fn to_packing(&self) -> Option<Packing> {
        let mut pairs = Vec::with_capacity(self.packages.len());
        for p in &self.packages {
            match p.as_slice() {
                &[a, b] => pairs.push((a, b)),
                _ => return None,
            }
        }
        Some(Packing::new(pairs, self.singletons.clone(), self.theta))
    }

    /// Number of packages (size ≥ 2 by construction).
    pub fn package_count(&self) -> usize {
        self.packages.len()
    }

    /// Total items covered (packages + singletons).
    pub fn total_items(&self) -> usize {
        self.packages.iter().map(Vec::len).sum::<usize>() + self.singletons.len()
    }

    /// Size of the largest package (0 when nothing is packed).
    pub fn largest_package(&self) -> usize {
        self.packages.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// True if `item` belongs to some package. O(1).
    pub fn is_packed(&self, item: ItemId) -> bool {
        self.package_of(item).is_some()
    }

    /// The members of `item`'s package, if any. O(1). Out-of-range ids
    /// degrade to "not packed" rather than panicking.
    pub fn package_of(&self, item: ItemId) -> Option<&[ItemId]> {
        let gi = self.group_of.get(item.index()).copied().flatten()?;
        Some(&self.packages[gi as usize])
    }

    /// The partner of `item` when its package is exactly a pair — the
    /// K = 2 analogue of [`Packing::partner`]; `None` for singletons and
    /// for members of larger packages (which have no single partner).
    pub fn partner(&self, item: ItemId) -> Option<ItemId> {
        match self.package_of(item)? {
            &[a, b] => Some(if a == item { b } else { a }),
            _ => None,
        }
    }
}

impl From<Packing> for PackageSet {
    fn from(p: Packing) -> Self {
        PackageSet::from_packing(&p)
    }
}

impl ToJson for PackageSet {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "version".to_string(),
                Json::Num(PACKAGE_SET_JSON_VERSION as f64),
            ),
            ("packages".to_string(), self.packages.to_json()),
            ("singletons".to_string(), self.singletons.to_json()),
            ("theta".to_string(), self.theta.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::greedy_matching_from_pairs;

    fn trio_and_pair() -> PackageSet {
        PackageSet::new(
            vec![
                vec![ItemId(2), ItemId(0), ItemId(4)],
                vec![ItemId(1), ItemId(3)],
            ],
            vec![ItemId(5)],
            0.3,
        )
    }

    #[test]
    fn membership_queries_are_consistent() {
        let ps = trio_and_pair();
        assert_eq!(ps.package_count(), 2);
        assert_eq!(ps.total_items(), 6);
        assert_eq!(ps.largest_package(), 3);
        // Members are sorted at construction.
        assert_eq!(ps.packages[0], vec![ItemId(0), ItemId(2), ItemId(4)]);
        assert_eq!(
            ps.package_of(ItemId(4)).unwrap(),
            &[ItemId(0), ItemId(2), ItemId(4)]
        );
        // Partner is defined exactly on pair packages.
        assert_eq!(ps.partner(ItemId(1)), Some(ItemId(3)));
        assert_eq!(ps.partner(ItemId(3)), Some(ItemId(1)));
        assert_eq!(ps.partner(ItemId(0)), None);
        assert_eq!(ps.partner(ItemId(5)), None);
        assert!(ps.is_packed(ItemId(2)));
        assert!(!ps.is_packed(ItemId(5)));
        // Out-of-range ids degrade gracefully.
        assert!(!ps.is_packed(ItemId(99)));
        assert_eq!(ps.package_of(ItemId(99)), None);
    }

    #[test]
    fn packing_round_trip_preserves_acceptance_order() {
        let packing = greedy_matching_from_pairs(
            vec![(ItemId(2), ItemId(3), 0.9), (ItemId(0), ItemId(1), 0.5)],
            5,
            0.1,
        );
        let ps = PackageSet::from_packing(&packing);
        // Acceptance order (descending similarity) survives.
        assert_eq!(ps.packages[0], vec![ItemId(2), ItemId(3)]);
        assert_eq!(ps.packages[1], vec![ItemId(0), ItemId(1)]);
        assert_eq!(ps.singletons, vec![ItemId(4)]);
        let back = ps.to_packing().unwrap();
        assert_eq!(back, packing);
        // The O(1) views agree across the two representations.
        for id in 0..5u32 {
            assert_eq!(ps.partner(ItemId(id)), packing.partner(ItemId(id)));
            assert_eq!(ps.is_packed(ItemId(id)), packing.is_packed(ItemId(id)));
        }
    }

    #[test]
    fn trio_has_no_pairwise_view() {
        assert!(trio_and_pair().to_packing().is_none());
    }

    #[test]
    fn json_is_versioned() {
        let j = trio_and_pair().to_json().to_string();
        assert!(j.contains("\"version\":1"), "{j}");
        assert!(j.contains("\"packages\""), "{j}");
        assert!(j.contains("\"theta\""), "{j}");
    }

    #[test]
    fn empty_set_is_legal() {
        let ps = PackageSet::new(Vec::new(), Vec::new(), 0.3);
        assert_eq!(ps.package_count(), 0);
        assert_eq!(ps.total_items(), 0);
        assert_eq!(ps.largest_package(), 0);
        assert_eq!(ps.to_packing().unwrap().pairs, Vec::new());
    }
}

//! # mcs-correlation — Phase 1 of the DP_Greedy algorithm
//!
//! Implements the correlation analysis of Section IV-A: co-occurrence
//! counting over a request sequence, the Jaccard similarity matrix of
//! Eq. (4)/(5), and the greedy threshold matching of Algorithm 1
//! (lines 7–27) that decides which item pairs are packed.
//!
//! Also provides two extensions called out by the paper as future work or
//! used by our ablation benches:
//!
//! * [`grouping`] — agglomerative K-package matching of *more than two*
//!   correlated items ("it can be naturally extended to the case where
//!   multiple data items could be packed"), generic over dense and sparse
//!   similarity backends, with an adaptive per-trace θ rule.
//! * [`exact`] — exact maximum-weight matching by bitmask DP, quantifying
//!   what the greedy matching loses (ablation `matching`).
//!
//! Both the pairwise matcher and the K-matcher produce the unified
//! [`PackageSet`] Phase-1 outcome ([`package_set`]); `Packing` remains
//! the K = 2 view with its byte-stable JSON shape.
//!
//! Scale paths: [`CoOccurrence::from_sequence`] shards large sequences
//! across worker threads (bit-identical to the serial count), [`sparse`]
//! provides a hash-based [`SparseCoOccurrence`] that never allocates the
//! dense `k·(k−1)/2` triangle — Phase 1 for large catalogs — and
//! [`incidence`] provides the bitset popcount kernel
//! ([`BitsetIncidence`]): one `u64` word-row per item over request
//! slots, selected by the `MCS_PHASE1` knob and **bit-identical** to the
//! per-event kernels in every output.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exact;
pub mod grouping;
pub mod incidence;
pub mod jaccard;
pub mod matching;
pub mod package_set;
pub mod sparse;
pub mod streaming;

pub use grouping::{
    adaptive_theta, agglomerative_grouping, agglomerative_packages, k_packages_sparse,
    CoAccessStats, PairwiseSimilarity,
};
pub use incidence::{
    greedy_matching_bitset, phase1_kernel, BitsetIncidence, Phase1Kernel, Phase1Stats, PHASE1_ENV,
};
pub use jaccard::{CoOccurrence, JaccardMatrix};
pub use matching::{greedy_matching, Packing};
pub use package_set::PackageSet;
pub use sparse::{greedy_matching_sparse, SparseCoOccurrence};
pub use streaming::{StreamingCooccurrence, StreamingSnapshot};

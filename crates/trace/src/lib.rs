//! # mcs-trace — synthetic metropolitan taxi workload
//!
//! The paper evaluates on GPS taxi traces from Shenzhen \[20\]: the city is
//! partitioned into ~50 zones, each hosting a cache server; 10 taxis are
//! selected, each associated with one distinct data item; and the request
//! trajectory of an item is the movement trajectory of its taxi. We do not
//! have that proprietary dataset, so this crate generates the closest
//! synthetic equivalent (see DESIGN.md §3):
//!
//! * [`city`] — a rectangular zone grid with weighted *hotspots*
//!   (commercial centres \[21\]); zone popularity decays with hotspot
//!   distance, producing the skewed spatial request distribution of the
//!   paper's Fig. 9.
//! * [`mobility`] — taxis move between zones drawn toward sampled hotspot
//!   targets; taxi *pairs* share episodes of joint travel with a
//!   configurable affinity, producing the spread of pair frequencies and
//!   Jaccard similarities of the paper's Fig. 10.
//! * [`workload`] — turns trajectories into a validated
//!   [`mcs_model::RequestSeq`]: per time step, co-located requesting taxis
//!   form one multi-item request (this is where item correlation comes
//!   from — items whose taxis ride together are accessed together).
//! * [`stats`] — zone histograms, pair frequency/Jaccard spectra and
//!   summary statistics used by the figure runners.
//! * [`io`] / [`binary`] — persistence: pretty JSON with provenance, plus
//!   the compact little-endian `DPGB` binary format for large traces
//!   (`dpg trace pack`), auto-detected on load.
//!
//! Everything is seeded (`mcs_model::rng`) and fully deterministic for a
//! given [`workload::WorkloadConfig`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binary;
pub mod city;
pub mod io;
pub mod mobility;
pub mod stats;
pub mod workload;

pub use city::CityGrid;
pub use stats::TraceStats;
pub use workload::{generate, WorkloadConfig};

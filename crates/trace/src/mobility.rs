//! Taxi mobility: hotspot-chasing walks with paired travel episodes.
//!
//! Each taxi repeatedly samples a hotspot target (weight-proportional),
//! walks toward it one zone per time step (with occasional random detours)
//! and, on arrival, dwells briefly before picking the next target.
//!
//! Taxis are organised in *pairs* `(2p, 2p+1)` with a per-pair **affinity**
//! `κ_p ∈ [0, 1]`: at the start of each episode the pair travels together
//! with probability `κ_p` (the follower shadows the leader's route).
//! Because co-located taxis produce co-requests (see
//! [`crate::workload`]), the affinity directly tunes the Jaccard
//! similarity of the corresponding item pair — giving the spectrum of
//! similarities that the paper's Fig. 10 extracts from the Shenzhen data.

use mcs_model::rng::Rng;

use crate::city::{CityGrid, Hotspot};

/// Per-taxi mobility state.
#[derive(Debug, Clone)]
struct TaxiState {
    zone: u32,
    target: u32,
    dwell: u32,
    /// True while shadowing the pair leader.
    following: bool,
}

/// Simulates all taxi positions over `steps` time steps.
///
/// Returns `positions[step][taxi] = zone`. Deterministic for a given RNG.
pub fn simulate_positions(
    grid: &CityGrid,
    hotspots: &[Hotspot],
    pair_affinity: &[f64],
    taxis: usize,
    steps: usize,
    detour_prob: f64,
    rng: &mut Rng,
) -> Vec<Vec<u32>> {
    assert!(!hotspots.is_empty(), "need at least one hotspot");
    let total_weight: f64 = hotspots.iter().map(|h| h.weight).sum();
    let sample_hotspot = |rng: &mut Rng| -> u32 {
        let mut x = rng.gen_f64() * total_weight;
        for h in hotspots {
            x -= h.weight;
            if x <= 0.0 {
                return h.zone;
            }
        }
        hotspots[hotspots.len() - 1].zone
    };

    let affinity_of = |taxi: usize| -> f64 { pair_affinity.get(taxi / 2).copied().unwrap_or(0.0) };

    let mut states: Vec<TaxiState> = (0..taxis)
        .map(|_| {
            let zone = rng.gen_range(0..grid.zones());
            TaxiState {
                zone,
                target: sample_hotspot(rng),
                dwell: 0,
                following: false,
            }
        })
        .collect();

    let mut positions = Vec::with_capacity(steps);
    for _ in 0..steps {
        for i in 0..taxis {
            // Followers are teleported to their leader after the leader
            // moves; skip their own dynamics.
            if states[i].following {
                continue;
            }
            if states[i].dwell > 0 {
                states[i].dwell -= 1;
            } else if states[i].zone == states[i].target {
                // Arrived: dwell 0–2 steps, then pick a new episode target.
                states[i].dwell = rng.gen_range(0..3);
                states[i].target = sample_hotspot(rng);
                // Episode boundary: decide pair travel for the *follower*
                // (odd index) of this leader if `i` is even.
                if i % 2 == 0 && i + 1 < taxis {
                    let together = rng.gen_f64() < affinity_of(i);
                    states[i + 1].following = together;
                    if !together {
                        // Release the follower with a fresh target of its own.
                        states[i + 1].target = sample_hotspot(rng);
                    }
                }
            } else if rng.gen_f64() < detour_prob {
                // Random detour: one step toward a uniformly random zone.
                let z = rng.gen_range(0..grid.zones());
                states[i].zone = grid.step_toward(states[i].zone, z);
            } else {
                states[i].zone = grid.step_toward(states[i].zone, states[i].target);
            }
        }
        // Snap followers to their leaders.
        for i in 0..taxis {
            if states[i].following {
                debug_assert!(i % 2 == 1);
                states[i].zone = states[i - 1].zone;
            }
        }
        positions.push(states.iter().map(|s| s.zone).collect());
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;
    fn setup() -> (CityGrid, Vec<Hotspot>) {
        let grid = CityGrid::shenzhen_like();
        let hotspots = grid.default_hotspots(5);
        (grid, hotspots)
    }

    #[test]
    fn positions_are_in_range_and_deterministic() {
        let (grid, hs) = setup();
        let mut r1 = Rng::seed_from_u64(7);
        let mut r2 = Rng::seed_from_u64(7);
        let a = simulate_positions(&grid, &hs, &[0.5], 2, 200, 0.1, &mut r1);
        let b = simulate_positions(&grid, &hs, &[0.5], 2, 200, 0.1, &mut r2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for step in &a {
            assert_eq!(step.len(), 2);
            for &z in step {
                assert!(z < grid.zones());
            }
        }
    }

    #[test]
    fn movement_is_one_zone_per_step() {
        let (grid, hs) = setup();
        let mut rng = Rng::seed_from_u64(3);
        let pos = simulate_positions(&grid, &hs, &[0.0], 1, 300, 0.05, &mut rng);
        for w in pos.windows(2) {
            assert!(grid.distance(w[0][0], w[1][0]) <= 1);
        }
    }

    #[test]
    fn high_affinity_pairs_colocate_more_than_low() {
        let (grid, hs) = setup();
        let colocation = |aff: f64, seed: u64| -> f64 {
            let mut rng = Rng::seed_from_u64(seed);
            let pos = simulate_positions(&grid, &hs, &[aff], 2, 2000, 0.05, &mut rng);
            let hits = pos.iter().filter(|p| p[0] == p[1]).count();
            hits as f64 / pos.len() as f64
        };
        let high = colocation(0.95, 11);
        let low = colocation(0.05, 11);
        assert!(
            high > low + 0.2,
            "affinity should drive co-location: high={high} low={low}"
        );
    }

    #[test]
    fn hotspot_weighting_skews_visits() {
        let (grid, hs) = setup();
        let mut rng = Rng::seed_from_u64(5);
        let pos = simulate_positions(&grid, &hs, &[0.0], 4, 3000, 0.05, &mut rng);
        let mut visits = vec![0usize; grid.zones() as usize];
        for step in &pos {
            for &z in step {
                visits[z as usize] += 1;
            }
        }
        let primary = hs[0].zone as usize;
        let avg = visits.iter().sum::<usize>() as f64 / visits.len() as f64;
        assert!(
            visits[primary] as f64 > 1.5 * avg,
            "primary hotspot should be over-visited: {} vs avg {avg}",
            visits[primary]
        );
    }
}

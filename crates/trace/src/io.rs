//! Trace persistence: JSON import/export of request sequences with their
//! generation provenance.
//!
//! A [`TraceFile`] bundles the validated [`RequestSeq`] with the
//! [`WorkloadConfig`] that generated it (when synthetic), so experiment
//! outputs can always be traced back to their seed. Real traces imported
//! from elsewhere simply omit the config.
//!
//! Serialisation runs on the in-tree [`mcs_model::json`] layer (the
//! no-network build carries no serde); the on-disk shape is unchanged
//! from the serde era, so previously written trace files keep loading.
//! Large traces can instead use the compact binary [`crate::binary`]
//! format (`dpg trace pack`); [`TraceFile::load`] auto-detects either
//! format by the leading `DPGB` magic.

use std::io::{Read, Write};
use std::path::Path;

use mcs_model::json::{self, FromJson, JsonError, ToJson};
use mcs_model::RequestSeq;

use crate::workload::WorkloadConfig;

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// A persisted trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// Format version (for forward compatibility checks).
    pub version: u32,
    /// Generation provenance, if synthetic.
    pub config: Option<WorkloadConfig>,
    /// The request sequence.
    pub sequence: RequestSeq,
}

mcs_model::impl_json!(TraceFile {
    version,
    config,
    sequence
});

/// IO/format errors.
#[derive(Debug)]
pub enum TraceIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON (de)serialisation failure. `location` carries the 1-based
    /// `(line, column)` of the failure when it is positional (a parse
    /// error); conversion failures after a successful parse have none.
    Json {
        /// The underlying error.
        error: JsonError,
        /// 1-based `(line, column)` of a parse failure.
        location: Option<(usize, usize)>,
    },
    /// Version mismatch.
    Version {
        /// Version found in the file.
        found: u32,
    },
    /// Binary (`DPGB`) format violation: truncation, bad section bounds,
    /// or a body that fails the model's validation on decode.
    Binary {
        /// Human-readable description of the violation.
        msg: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io: {e}"),
            TraceIoError::Json {
                error,
                location: Some((line, col)),
            } => write!(f, "trace json at line {line}, column {col}: {}", error.msg),
            TraceIoError::Json {
                error,
                location: None,
            } => write!(f, "trace json: {}", error.msg),
            TraceIoError::Version { found } => write!(
                f,
                "trace format version {found} unsupported (expected {FORMAT_VERSION})"
            ),
            TraceIoError::Binary { msg } => write!(f, "trace binary: {msg}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<JsonError> for TraceIoError {
    fn from(e: JsonError) -> Self {
        TraceIoError::Json {
            error: e,
            location: None,
        }
    }
}

impl TraceFile {
    /// Wraps a synthetic trace with its provenance.
    pub fn synthetic(config: WorkloadConfig, sequence: RequestSeq) -> Self {
        TraceFile {
            version: FORMAT_VERSION,
            config: Some(config),
            sequence,
        }
    }

    /// Wraps an external trace.
    pub fn external(sequence: RequestSeq) -> Self {
        TraceFile {
            version: FORMAT_VERSION,
            config: None,
            sequence,
        }
    }

    /// Serialises to a writer as pretty JSON.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), TraceIoError> {
        w.write_all(self.to_json().to_string_pretty().as_bytes())?;
        Ok(())
    }

    /// Serialises to a writer in the compact binary (`DPGB`) format.
    pub fn write_binary_to<W: Write>(&self, w: W) -> Result<(), TraceIoError> {
        crate::binary::write_binary(self, w)
    }

    /// Deserialises from a reader, auto-detecting the format: a `DPGB`
    /// magic selects the binary decoder, anything else is parsed as JSON
    /// (with the version checked before the body in both cases).
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, TraceIoError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        if bytes.starts_with(&crate::binary::BINARY_MAGIC) {
            return crate::binary::read_binary(&bytes);
        }
        let text = String::from_utf8(bytes).map_err(|e| TraceIoError::Binary {
            msg: format!("neither DPGB binary nor UTF-8 JSON: {e}"),
        })?;
        let value = json::parse(&text).map_err(|e| TraceIoError::Json {
            location: Some(json::line_col(&text, e.at)),
            error: e,
        })?;
        // Check the version *before* decoding the body, so a future
        // format revision can change the shape freely.
        let found = u32::from_json(value.field("version")?)?;
        if found != FORMAT_VERSION {
            return Err(TraceIoError::Version { found });
        }
        Ok(TraceFile::from_json(&value)?)
    }

    /// Saves to a path as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))
    }

    /// Saves to a path in the binary (`DPGB`) format.
    pub fn save_binary(&self, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
        let f = std::fs::File::create(path)?;
        self.write_binary_to(std::io::BufWriter::new(f))
    }

    /// Loads from a path, auto-detecting JSON vs binary.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceIoError> {
        let f = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::generate;

    #[test]
    fn round_trip_through_memory() {
        let cfg = WorkloadConfig::small(3);
        let seq = generate(&cfg);
        let file = TraceFile::synthetic(cfg, seq);
        let mut buf = Vec::new();
        file.write_to(&mut buf).unwrap();
        let back = TraceFile::read_from(buf.as_slice()).unwrap();
        assert_eq!(file, back);
    }

    #[test]
    fn round_trip_through_disk() {
        let cfg = WorkloadConfig::small(5);
        let seq = generate(&cfg);
        let file = TraceFile::synthetic(cfg, seq);
        let dir = std::env::temp_dir().join("dpg-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        file.save(&path).unwrap();
        let back = TraceFile::load(&path).unwrap();
        assert_eq!(file, back);
        std::fs::remove_file(&path).ok();
    }

    /// `load` must transparently read both formats: the binary file is
    /// identified by its magic, everything else falls back to JSON.
    #[test]
    fn load_autodetects_binary_and_json() {
        let cfg = WorkloadConfig::small(9);
        let seq = generate(&cfg);
        let file = TraceFile::synthetic(cfg, seq);
        let dir = std::env::temp_dir().join("dpg-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("auto.json");
        let bin_path = dir.join("auto.dpgb");
        file.save(&json_path).unwrap();
        file.save_binary(&bin_path).unwrap();
        assert_eq!(TraceFile::load(&json_path).unwrap(), file);
        assert_eq!(TraceFile::load(&bin_path).unwrap(), file);
        std::fs::remove_file(&json_path).ok();
        std::fs::remove_file(&bin_path).ok();
    }

    #[test]
    fn external_trace_omits_config() {
        let seq = generate(&WorkloadConfig::small(4));
        let file = TraceFile::external(seq);
        let mut buf = Vec::new();
        file.write_to(&mut buf).unwrap();
        let back = TraceFile::read_from(buf.as_slice()).unwrap();
        assert_eq!(back.config, None);
        assert_eq!(file, back);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let cfg = WorkloadConfig::small(1);
        let seq = generate(&cfg);
        let mut file = TraceFile::external(seq);
        file.version = 99;
        let mut buf = Vec::new();
        file.write_to(&mut buf).unwrap();
        let err = TraceFile::read_from(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Version { found: 99 }));
    }

    #[test]
    fn corrupt_json_is_an_error() {
        let err = TraceFile::read_from(&b"{not json"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::Json { .. }));
        assert!(err.to_string().contains("json"));
    }

    /// Malformed trace files must point the user at the failing line.
    #[test]
    fn parse_errors_carry_line_and_column() {
        let text = b"{\n  \"version\": 1,\n  \"config\": null,\n  oops\n}";
        let err = TraceFile::read_from(&text[..]).unwrap_err();
        match err {
            TraceIoError::Json {
                location: Some((line, col)),
                ..
            } => {
                assert_eq!(line, 4, "{err}");
                assert_eq!(col, 3, "{err}");
            }
            other => panic!("expected positioned json error, got {other}"),
        }
        assert!(err.to_string().contains("line 4, column 3"), "{err}");
    }

    /// A structurally valid file whose sequence violates the model's
    /// standing assumptions must be rejected by the builder on load —
    /// with the offending request's index — not admitted unchecked.
    #[test]
    fn invalid_sequences_are_rejected_on_load_with_request_index() {
        let cfg = WorkloadConfig::small(2);
        let file = TraceFile::synthetic(cfg, generate(&WorkloadConfig::small(2)));
        let mut text = file.to_json().to_string_pretty();
        // Corrupt the first request's time to break monotonicity at #1.
        let needle = "\"time\": ";
        let at = text.find(needle).unwrap() + needle.len();
        let end = text[at..].find(',').unwrap() + at;
        text.replace_range(at..end, "1e300");
        let err = TraceFile::read_from(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("invalid request sequence"), "{msg}");
        assert!(msg.contains("#1"), "{msg}");
    }
}

//! Trace statistics backing Figs. 9 and 10 of the paper: the spatial
//! request distribution over zones and the frequency/Jaccard spectrum of
//! item pairs.

use mcs_model::{ItemId, RequestSeq, ServerId};

/// Summary statistics of a request sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Requests per server (zone) — the Fig. 9 histogram.
    pub zone_histogram: Vec<usize>,
    /// Total requests `n`.
    pub requests: usize,
    /// Total item accesses `Σ|D_i|`.
    pub item_accesses: usize,
    /// Mean items per request.
    pub mean_items_per_request: f64,
    /// Horizon (time of the last request).
    pub horizon: f64,
}

impl TraceStats {
    /// Computes statistics in one pass.
    pub fn from_sequence(seq: &RequestSeq) -> Self {
        let mut zone_histogram = vec![0usize; seq.servers() as usize];
        let mut item_accesses = 0usize;
        for r in seq.requests() {
            zone_histogram[r.server.index()] += 1;
            item_accesses += r.items.len();
        }
        let requests = seq.len();
        TraceStats {
            zone_histogram,
            requests,
            item_accesses,
            mean_items_per_request: if requests == 0 {
                0.0
            } else {
                item_accesses as f64 / requests as f64
            },
            horizon: seq.horizon(),
        }
    }

    /// The busiest zone and its request count.
    pub fn hottest_zone(&self) -> Option<(ServerId, usize)> {
        self.zone_histogram
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(z, &c)| (ServerId(z as u32), c))
    }

    /// Gini-style skew indicator: share of requests landing in the top
    /// `top` zones. The paper's Fig. 9 shows a strongly skewed spatial
    /// distribution.
    pub fn top_zone_share(&self, top: usize) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let mut counts = self.zone_histogram.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts.iter().take(top).sum::<usize>() as f64 / self.requests as f64
    }
}

/// One row of the Fig. 10 table: an item pair with its co-occurrence
/// frequency and Jaccard similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairSpectrumRow {
    /// First item.
    pub a: ItemId,
    /// Second item.
    pub b: ItemId,
    /// `|(d_a, d_b)|` — co-occurrence frequency.
    pub frequency: usize,
    /// Jaccard similarity per Eq. (5).
    pub jaccard: f64,
}

/// The pair frequency/Jaccard spectrum, sorted by descending Jaccard — the
/// content of the paper's Fig. 10.
pub fn pair_spectrum(seq: &RequestSeq) -> Vec<PairSpectrumRow> {
    let k = seq.items();
    let mut rows = Vec::with_capacity((k as usize * (k as usize).saturating_sub(1)) / 2);
    for i in 0..k {
        for j in (i + 1)..k {
            let (a, b) = (ItemId(i), ItemId(j));
            let pv = seq.pair_view(a, b);
            rows.push(PairSpectrumRow {
                a,
                b,
                frequency: pv.both.len(),
                jaccard: pv.jaccard(),
            });
        }
    }
    rows.sort_by(|x, y| {
        y.jaccard
            .partial_cmp(&x.jaccard)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.a.cmp(&y.a))
    });
    rows
}

mcs_model::impl_to_json!(TraceStats {
    zone_histogram,
    requests,
    item_accesses,
    mean_items_per_request,
    horizon
});
mcs_model::impl_to_json!(PairSpectrumRow {
    a,
    b,
    frequency,
    jaccard
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};
    use mcs_model::RequestSeqBuilder;

    #[test]
    fn stats_count_correctly() {
        let seq = RequestSeqBuilder::new(3, 2)
            .push(0u32, 1.0, [0])
            .push(1u32, 2.0, [0, 1])
            .push(1u32, 3.0, [1])
            .build()
            .unwrap();
        let st = TraceStats::from_sequence(&seq);
        assert_eq!(st.zone_histogram, vec![1, 2, 0]);
        assert_eq!(st.requests, 3);
        assert_eq!(st.item_accesses, 4);
        assert!((st.mean_items_per_request - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(st.hottest_zone(), Some((ServerId(1), 2)));
        assert!((st.horizon - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_stats() {
        let seq = RequestSeqBuilder::new(2, 1).build().unwrap();
        let st = TraceStats::from_sequence(&seq);
        assert_eq!(st.requests, 0);
        assert_eq!(st.mean_items_per_request, 0.0);
        assert_eq!(st.top_zone_share(3), 0.0);
    }

    #[test]
    fn synthetic_city_is_spatially_skewed_like_fig9() {
        let seq = generate(&WorkloadConfig::paper_like(21));
        let st = TraceStats::from_sequence(&seq);
        // 50 zones: under uniformity the top 10 zones would hold 20% of the
        // requests; hotspot attraction must skew this strongly.
        let share = st.top_zone_share(10);
        assert!(
            share > 0.4,
            "expected skewed distribution, top-10 share = {share}"
        );
    }

    #[test]
    fn pair_spectrum_is_sorted_and_complete() {
        let seq = generate(&WorkloadConfig::small(13));
        let rows = pair_spectrum(&seq);
        assert_eq!(rows.len(), 4 * 3 / 2);
        for w in rows.windows(2) {
            assert!(w[0].jaccard >= w[1].jaccard);
        }
        // Frequencies agree with direct counting.
        for row in &rows {
            assert_eq!(row.frequency, seq.count_pair(row.a, row.b));
        }
    }

    #[test]
    fn designed_pairs_dominate_the_spectrum() {
        // The paired taxis (0,1) and (2,3) should outrank cross pairs.
        let seq = generate(&WorkloadConfig::small(29));
        let rows = pair_spectrum(&seq);
        let top = rows[0];
        let is_designed = |r: &PairSpectrumRow| {
            (r.a == ItemId(0) && r.b == ItemId(1)) || (r.a == ItemId(2) && r.b == ItemId(3))
        };
        assert!(
            is_designed(&top),
            "top pair should be a designed pair, got {top:?}"
        );
    }
}

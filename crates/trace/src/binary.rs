//! Compact binary trace format (`DPGB`): fixed-width little-endian
//! records designed for zero-copy scans of large traces.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"DPGB"
//! 4       4     u32    format version (1)
//! 8       4     u32    header length in bytes (36)
//! 12      36    header:
//!   12    4     u32    servers  (m)
//!   16    4     u32    items    (k)
//!   20    8     u64    request record count (n)
//!   28    8     u64    item entry count (sum of |D_i|)
//!   36    4     u32    config blob length in bytes (0 = no config)
//!   40    8     2×u32  reserved (zero)
//! 48      24·n  request records, 8-aligned, 24 bytes each:
//!                 u64  f64 bit pattern of the request time t_i
//!                 u32  server id s_i
//!                 u32  item count |D_i|
//!                 u64  offset of D_i into the item entry section
//! ...     4·e   item entries: u32 item ids, grouped per record
//! ...     c     optional config blob: UTF-8 JSON of the WorkloadConfig
//! ```
//!
//! The record section starts at byte 48 and every record is 8-aligned, so
//! a memory-mapped reader can overlay `(u64, u32, u32, u64)` views
//! directly; times are stored as raw `f64` bit patterns, making the
//! round-trip bit-exact. Reading always revalidates through
//! [`RequestSeqBuilder`], so a corrupted or hand-built file cannot smuggle
//! in a sequence that violates the model's standing assumptions.

use std::io::Write;

use mcs_model::json::{self, FromJson, ToJson};
use mcs_model::request::RequestSeqBuilder;

use crate::io::{TraceFile, TraceIoError, FORMAT_VERSION};
use crate::workload::WorkloadConfig;

/// File magic identifying the binary trace format.
pub const BINARY_MAGIC: [u8; 4] = *b"DPGB";

/// Size of the fixed header that follows magic + version + header-length.
const HEADER_LEN: u32 = 36;

/// Byte offset of the first request record (8-aligned).
const RECORDS_AT: usize = 48;

/// Size of one request record in bytes.
const RECORD_LEN: usize = 24;

fn bad(msg: impl Into<String>) -> TraceIoError {
    TraceIoError::Binary { msg: msg.into() }
}

/// Serialises `file` in the binary format.
pub(crate) fn write_binary<W: Write>(file: &TraceFile, mut w: W) -> Result<(), TraceIoError> {
    let seq = &file.sequence;
    let config_blob: Vec<u8> = match &file.config {
        Some(cfg) => cfg.to_json().to_string().into_bytes(),
        None => Vec::new(),
    };
    let config_len =
        u32::try_from(config_blob.len()).map_err(|_| bad("config blob exceeds u32 length"))?;
    let entry_count: u64 = seq.requests().iter().map(|r| r.items.len() as u64).sum();

    let mut head = Vec::with_capacity(RECORDS_AT);
    head.extend_from_slice(&BINARY_MAGIC);
    head.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    head.extend_from_slice(&HEADER_LEN.to_le_bytes());
    head.extend_from_slice(&seq.servers().to_le_bytes());
    head.extend_from_slice(&seq.items().to_le_bytes());
    head.extend_from_slice(&(seq.len() as u64).to_le_bytes());
    head.extend_from_slice(&entry_count.to_le_bytes());
    head.extend_from_slice(&config_len.to_le_bytes());
    head.extend_from_slice(&[0u8; 8]); // reserved
    debug_assert_eq!(head.len(), RECORDS_AT);
    w.write_all(&head)?;

    let mut entries: Vec<u8> = Vec::with_capacity(entry_count as usize * 4);
    let mut offset: u64 = 0;
    for r in seq.requests() {
        let mut rec = [0u8; RECORD_LEN];
        rec[0..8].copy_from_slice(&r.time.to_bits().to_le_bytes());
        rec[8..12].copy_from_slice(&r.server.0.to_le_bytes());
        rec[12..16].copy_from_slice(&(r.items.len() as u32).to_le_bytes());
        rec[16..24].copy_from_slice(&offset.to_le_bytes());
        w.write_all(&rec)?;
        for item in &r.items {
            entries.extend_from_slice(&item.0.to_le_bytes());
        }
        offset += r.items.len() as u64;
    }
    w.write_all(&entries)?;
    w.write_all(&config_blob)?;
    Ok(())
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Deserialises the binary format from a full in-memory byte image.
///
/// The caller has already matched [`BINARY_MAGIC`].
pub(crate) fn read_binary(bytes: &[u8]) -> Result<TraceFile, TraceIoError> {
    if bytes.len() < RECORDS_AT {
        return Err(bad(format!(
            "truncated header: {} bytes, need {RECORDS_AT}",
            bytes.len()
        )));
    }
    debug_assert_eq!(&bytes[0..4], &BINARY_MAGIC);
    let version = le_u32(bytes, 4);
    if version != FORMAT_VERSION {
        return Err(TraceIoError::Version { found: version });
    }
    let header_len = le_u32(bytes, 8);
    if header_len < HEADER_LEN {
        return Err(bad(format!(
            "header length {header_len} below minimum {HEADER_LEN}"
        )));
    }
    // A future revision may grow the header; skip what we don't know.
    let records_at = 12usize
        .checked_add(header_len as usize)
        .ok_or_else(|| bad("header length overflow"))?;
    if bytes.len() < records_at {
        return Err(bad(format!(
            "truncated header: {} bytes, need {records_at}",
            bytes.len()
        )));
    }
    let servers = le_u32(bytes, 12);
    let items = le_u32(bytes, 16);
    let request_count = le_u64(bytes, 20);
    let entry_count = le_u64(bytes, 28);
    let config_len = le_u32(bytes, 36) as usize;

    let records_len = (request_count as usize)
        .checked_mul(RECORD_LEN)
        .ok_or_else(|| bad("request count overflow"))?;
    let entries_at = records_at
        .checked_add(records_len)
        .ok_or_else(|| bad("record section overflow"))?;
    let entries_len = (entry_count as usize)
        .checked_mul(4)
        .ok_or_else(|| bad("item entry count overflow"))?;
    let config_at = entries_at
        .checked_add(entries_len)
        .ok_or_else(|| bad("item entry section overflow"))?;
    let total = config_at
        .checked_add(config_len)
        .ok_or_else(|| bad("config section overflow"))?;
    if bytes.len() < total {
        return Err(bad(format!(
            "truncated body: {} bytes, need {total}",
            bytes.len()
        )));
    }

    let entries = &bytes[entries_at..config_at];
    let mut builder = RequestSeqBuilder::new(servers, items);
    for i in 0..request_count as usize {
        let at = records_at + i * RECORD_LEN;
        let time = f64::from_bits(le_u64(bytes, at));
        let server = le_u32(bytes, at + 8);
        let count = le_u32(bytes, at + 12) as usize;
        let offset = le_u64(bytes, at + 16) as usize;
        let end = offset
            .checked_add(count)
            .filter(|end| end * 4 <= entries.len())
            .ok_or_else(|| bad(format!("record #{}: item range out of bounds", i + 1)))?;
        let ids = (offset..end).map(|e| le_u32(entries, e * 4));
        builder = builder.push(server, time, ids);
    }
    let sequence = builder
        .build()
        .map_err(|e| bad(format!("invalid request sequence: {e}")))?;

    let config = if config_len == 0 {
        None
    } else {
        let text = std::str::from_utf8(&bytes[config_at..total])
            .map_err(|_| bad("config blob is not UTF-8"))?;
        let value = json::parse(text).map_err(|e| bad(format!("config blob: {}", e.msg)))?;
        Some(
            WorkloadConfig::from_json(&value)
                .map_err(|e| bad(format!("config blob: {}", e.msg)))?,
        )
    };

    Ok(TraceFile {
        version,
        config,
        sequence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::generate;

    fn sample() -> TraceFile {
        let cfg = WorkloadConfig::small(11);
        let seq = generate(&cfg);
        TraceFile::synthetic(cfg, seq)
    }

    fn packed(file: &TraceFile) -> Vec<u8> {
        let mut buf = Vec::new();
        write_binary(file, &mut buf).unwrap();
        buf
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let file = sample();
        let back = read_binary(&packed(&file)).unwrap();
        assert_eq!(file, back);
    }

    #[test]
    fn external_trace_has_empty_config_blob() {
        let file = TraceFile::external(generate(&WorkloadConfig::small(3)));
        let bytes = packed(&file);
        assert_eq!(le_u32(&bytes, 36), 0);
        let back = read_binary(&bytes).unwrap();
        assert_eq!(back.config, None);
        assert_eq!(file, back);
    }

    #[test]
    fn record_section_is_eight_aligned() {
        assert_eq!(RECORDS_AT % 8, 0);
        assert_eq!(RECORD_LEN % 8, 0);
    }

    #[test]
    fn truncated_files_are_rejected() {
        let bytes = packed(&sample());
        for cut in [3, 20, RECORDS_AT - 1, RECORDS_AT + 5, bytes.len() - 1] {
            let err = read_binary(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceIoError::Binary { .. }),
                "cut at {cut}: {err}"
            );
            assert!(err.to_string().contains("truncated"), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = packed(&sample());
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        let err = read_binary(&bytes).unwrap_err();
        assert!(matches!(err, TraceIoError::Version { found: 9 }));
    }

    #[test]
    fn corrupted_records_fail_builder_validation() {
        let file = sample();
        let mut bytes = packed(&file);
        // Zero the second record's time: violates strict monotonicity.
        let at = RECORDS_AT + RECORD_LEN;
        bytes[at..at + 8].copy_from_slice(&0f64.to_bits().to_le_bytes());
        let err = read_binary(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("invalid request sequence"),
            "{err}"
        );
    }

    #[test]
    fn out_of_bounds_item_offset_is_rejected() {
        let mut bytes = packed(&sample());
        let huge = u64::MAX.to_le_bytes();
        bytes[RECORDS_AT + 16..RECORDS_AT + 24].copy_from_slice(&huge);
        let err = read_binary(&bytes).unwrap_err();
        assert!(err.to_string().contains("item range"), "{err}");
    }

    #[test]
    fn times_survive_as_exact_bit_patterns() {
        let file = sample();
        let back = read_binary(&packed(&file)).unwrap();
        for (a, b) in file
            .sequence
            .requests()
            .iter()
            .zip(back.sequence.requests())
        {
            assert_eq!(a.time.to_bits(), b.time.to_bits());
        }
    }
}

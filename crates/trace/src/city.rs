//! The zone-partitioned city: a rectangular grid of cache-server zones with
//! weighted hotspots.
//!
//! The paper partitions Shenzhen into ~50 parts, "each maintaining a data
//! server to serve the user requests made in the taxis". Movement in a
//! metropolis is not uniform: commercial centres attract traffic \[21\]. We
//! model that with a handful of weighted hotspot zones; the popularity of
//! any zone decays with its grid distance to the hotspots, and taxis chase
//! sampled hotspot targets (see [`crate::mobility`]).

use mcs_model::ServerId;

/// A rectangular grid of zones; zone `(row, col)` maps to server
/// `row * cols + col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CityGrid {
    /// Number of grid rows.
    pub rows: u32,
    /// Number of grid columns.
    pub cols: u32,
}

/// A hotspot: an attractive zone with a sampling weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// Zone index of the hotspot.
    pub zone: u32,
    /// Relative attraction weight (> 0).
    pub weight: f64,
}

impl CityGrid {
    /// The paper's layout: 50 zones (10 × 5).
    pub fn shenzhen_like() -> Self {
        CityGrid { rows: 5, cols: 10 }
    }

    /// Total zone (= server) count `m`.
    #[inline]
    pub fn zones(&self) -> u32 {
        self.rows * self.cols
    }

    /// `(row, col)` of a zone index.
    #[inline]
    pub fn coords(&self, zone: u32) -> (u32, u32) {
        (zone / self.cols, zone % self.cols)
    }

    /// Zone index of `(row, col)`.
    #[inline]
    pub fn zone_at(&self, row: u32, col: u32) -> u32 {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// The server hosted by a zone.
    #[inline]
    pub fn server(&self, zone: u32) -> ServerId {
        ServerId(zone)
    }

    /// Manhattan distance between two zones.
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// One grid step from `zone` toward `target` (row first, then column);
    /// returns `zone` when already there.
    pub fn step_toward(&self, zone: u32, target: u32) -> u32 {
        let (mut r, mut c) = self.coords(zone);
        let (tr, tc) = self.coords(target);
        if r != tr {
            r = if tr > r { r + 1 } else { r - 1 };
        } else if c != tc {
            c = if tc > c { c + 1 } else { c - 1 };
        }
        self.zone_at(r, c)
    }

    /// Default hotspot layout: `count` hotspots spread along the grid
    /// diagonal with geometrically decaying weights — a primary CBD plus
    /// secondary centres, echoing the commercial-centre analysis of \[21\].
    pub fn default_hotspots(&self, count: u32) -> Vec<Hotspot> {
        let count = count.max(1).min(self.zones());
        (0..count)
            .map(|i| {
                let row = (i * self.rows.saturating_sub(1)) / count.max(1);
                let col = (i * self.cols.saturating_sub(1)) / count.max(1);
                Hotspot {
                    zone: self.zone_at(row.min(self.rows - 1), col.min(self.cols - 1)),
                    weight: 1.0 / (1.0 + i as f64),
                }
            })
            .collect()
    }
}

mcs_model::impl_json!(CityGrid { rows, cols });
mcs_model::impl_json!(Hotspot { zone, weight });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shenzhen_like_has_50_zones() {
        let g = CityGrid::shenzhen_like();
        assert_eq!(g.zones(), 50);
    }

    #[test]
    fn coords_round_trip() {
        let g = CityGrid { rows: 4, cols: 7 };
        for z in 0..g.zones() {
            let (r, c) = g.coords(z);
            assert_eq!(g.zone_at(r, c), z);
            assert!(r < 4 && c < 7);
        }
    }

    #[test]
    fn distance_is_manhattan() {
        let g = CityGrid { rows: 4, cols: 7 };
        let a = g.zone_at(0, 0);
        let b = g.zone_at(3, 6);
        assert_eq!(g.distance(a, b), 9);
        assert_eq!(g.distance(a, a), 0);
        assert_eq!(g.distance(a, b), g.distance(b, a));
    }

    #[test]
    fn step_toward_decreases_distance() {
        let g = CityGrid { rows: 5, cols: 10 };
        let target = g.zone_at(4, 9);
        let mut z = g.zone_at(0, 0);
        let mut steps = 0;
        while z != target {
            let next = g.step_toward(z, target);
            assert_eq!(g.distance(next, target) + 1, g.distance(z, target));
            z = next;
            steps += 1;
            assert!(steps <= 13, "walk should terminate");
        }
        assert_eq!(steps, 13);
        assert_eq!(g.step_toward(target, target), target);
    }

    #[test]
    fn default_hotspots_are_in_range_with_positive_weights() {
        let g = CityGrid::shenzhen_like();
        let hs = g.default_hotspots(5);
        assert_eq!(hs.len(), 5);
        for h in &hs {
            assert!(h.zone < g.zones());
            assert!(h.weight > 0.0);
        }
        // Primary hotspot dominates.
        assert!(hs[0].weight > hs[4].weight);
    }

    #[test]
    fn hotspot_count_is_clamped() {
        let g = CityGrid { rows: 1, cols: 2 };
        assert_eq!(g.default_hotspots(10).len(), 2);
        assert_eq!(g.default_hotspots(0).len(), 1);
    }
}

//! Workload generation: from taxi trajectories to a validated
//! [`RequestSeq`].
//!
//! Following the paper's setup, item `d_i` is bound to taxi `i` ("10 taxis,
//! each accessing a single distinct data item"). At every time step each
//! taxi requests with probability `request_prob`; all requesting taxis in
//! the same zone at the same step are merged into **one** multi-item
//! request at that zone's server — this is where item correlation arises:
//! items whose taxis ride together are accessed together. Step times are
//! de-conflicted per zone so the model-level rule "at most one request per
//! time instance" holds.

use mcs_model::rng::Rng;

use mcs_model::{RequestSeq, RequestSeqBuilder};

use crate::city::{CityGrid, Hotspot};
use crate::mobility::simulate_positions;

/// Full configuration of a synthetic workload; serialisable for
/// provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// City layout (zones = cache servers).
    pub grid: CityGrid,
    /// Hotspots; empty selects [`CityGrid::default_hotspots`] with 5.
    pub hotspots: Vec<Hotspot>,
    /// Number of taxis = number of distinct data items `k`.
    pub taxis: usize,
    /// Simulation steps.
    pub steps: usize,
    /// Wall-clock duration of one step (sets the μ-vs-λ balance of the
    /// resulting traces).
    pub step_duration: f64,
    /// Probability a taxi issues a request in a step.
    pub request_prob: f64,
    /// Probability of a random detour step.
    pub detour_prob: f64,
    /// Per-pair travel affinity `κ_p` for taxi pairs `(2p, 2p+1)`;
    /// missing entries default to 0.
    pub pair_affinity: Vec<f64>,
    /// Probability that a taxi joins its pair partner's request when both
    /// are in the same zone in the same step (shared passenger/interest —
    /// the news-text-plus-pictures effect the paper motivates).
    pub joint_request_prob: f64,
    /// Optional diurnal cycle: metropolitan request volume is not flat
    /// over the day.
    pub diurnal: Option<DiurnalCycle>,
    /// Per-taxi activity multipliers on `request_prob` (missing entries
    /// default to 1) — some taxis are simply busier than others.
    pub taxi_activity: Vec<f64>,
    /// RNG seed — identical configs generate identical traces.
    pub seed: u64,
}

/// A square-wave day/night request-volume cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCycle {
    /// Steps per full day (first half is day, second half night).
    pub period_steps: usize,
    /// Multiplier on `request_prob` during the night half (≤ 1 for quieter
    /// nights).
    pub night_factor: f64,
}

impl DiurnalCycle {
    /// True if `step` falls in the night half of its period.
    pub fn is_night(&self, step: usize) -> bool {
        self.period_steps > 0 && (step % self.period_steps) * 2 >= self.period_steps
    }
}

mcs_model::impl_to_json!(WorkloadConfig {
    grid,
    hotspots,
    taxis,
    steps,
    step_duration,
    request_prob,
    detour_prob,
    pair_affinity,
    joint_request_prob,
    diurnal,
    taxi_activity,
    seed
});
mcs_model::impl_json!(DiurnalCycle {
    period_steps,
    night_factor
});

// Hand-written so the two late-added fields stay optional on load (they
// carried `#[serde(default)]` before the JSON layer moved in-tree),
// keeping older trace files readable.
impl mcs_model::json::FromJson for WorkloadConfig {
    fn from_json(v: &mcs_model::json::Json) -> Result<Self, mcs_model::json::JsonError> {
        Ok(WorkloadConfig {
            grid: FromJsonField::req(v, "grid")?,
            hotspots: FromJsonField::req(v, "hotspots")?,
            taxis: FromJsonField::req(v, "taxis")?,
            steps: FromJsonField::req(v, "steps")?,
            step_duration: FromJsonField::req(v, "step_duration")?,
            request_prob: FromJsonField::req(v, "request_prob")?,
            detour_prob: FromJsonField::req(v, "detour_prob")?,
            pair_affinity: FromJsonField::req(v, "pair_affinity")?,
            joint_request_prob: FromJsonField::req(v, "joint_request_prob")?,
            diurnal: match v.get("diurnal") {
                None => None,
                Some(d) => Option::<DiurnalCycle>::from_json(d)?,
            },
            taxi_activity: match v.get("taxi_activity") {
                None => Vec::new(),
                Some(a) => Vec::<f64>::from_json(a)?,
            },
            seed: FromJsonField::req(v, "seed")?,
        })
    }
}

/// Small helper: required-field extraction with the field name in errors.
trait FromJsonField: Sized {
    fn req(v: &mcs_model::json::Json, key: &str) -> Result<Self, mcs_model::json::JsonError>;
}

impl<T: mcs_model::json::FromJson> FromJsonField for T {
    fn req(v: &mcs_model::json::Json, key: &str) -> Result<Self, mcs_model::json::JsonError> {
        T::from_json(v.field(key)?)
            .map_err(|e| mcs_model::json::JsonError::conv(format!("field `{key}`: {}", e.msg)))
    }
}

impl WorkloadConfig {
    /// The paper-like default: 50 zones, 10 taxis (= 10 items, 5 pairs with
    /// a spread of affinities), ~3000 steps.
    pub fn paper_like(seed: u64) -> Self {
        WorkloadConfig {
            grid: CityGrid::shenzhen_like(),
            hotspots: Vec::new(),
            taxis: 10,
            steps: 3000,
            step_duration: 0.1,
            request_prob: 0.25,
            detour_prob: 0.08,
            // A spread of affinities producing Jaccard similarities from
            // ~0.05 to ~0.8 (the x-axis range of Figs. 11/13).
            pair_affinity: vec![0.95, 0.7, 0.45, 0.25, 0.05],
            joint_request_prob: 0.9,
            diurnal: None,
            taxi_activity: Vec::new(),
            seed,
        }
    }

    /// A small, fast configuration for tests.
    pub fn small(seed: u64) -> Self {
        WorkloadConfig {
            grid: CityGrid { rows: 3, cols: 4 },
            hotspots: Vec::new(),
            taxis: 4,
            steps: 300,
            step_duration: 0.1,
            request_prob: 0.3,
            detour_prob: 0.1,
            pair_affinity: vec![0.8, 0.2],
            joint_request_prob: 0.9,
            diurnal: None,
            taxi_activity: Vec::new(),
            seed,
        }
    }
}

/// Generates the request sequence for a configuration.
///
/// ```
/// use mcs_trace::workload::{generate, WorkloadConfig};
///
/// let seq = generate(&WorkloadConfig::small(42));
/// assert_eq!(seq.items(), 4);
/// assert!(!seq.is_empty());
/// // Identical configs produce identical traces.
/// assert_eq!(seq, generate(&WorkloadConfig::small(42)));
/// ```
///
/// # Panics
///
/// Panics if the configuration is degenerate (no taxis, no steps, or a
/// non-positive step duration).
pub fn generate(config: &WorkloadConfig) -> RequestSeq {
    assert!(config.taxis > 0, "need at least one taxi");
    assert!(config.steps > 0, "need at least one step");
    assert!(config.step_duration > 0.0, "step duration must be positive");

    let hotspots = if config.hotspots.is_empty() {
        config.grid.default_hotspots(5)
    } else {
        config.hotspots.clone()
    };
    let mut rng = Rng::seed_from_u64(config.seed);
    let positions = simulate_positions(
        &config.grid,
        &hotspots,
        &config.pair_affinity,
        config.taxis,
        config.steps,
        config.detour_prob,
        &mut rng,
    );

    let zones = config.grid.zones() as usize;
    let mut builder = RequestSeqBuilder::new(config.grid.zones(), config.taxis as u32);
    // Sub-step offsets keep request times globally strict while preserving
    // step granularity: zone z in step s fires at (s + 1 + z/(zones+1))·dt.
    let dt = config.step_duration;
    for (step, taxi_zones) in positions.iter().enumerate() {
        // Base Bernoulli requests, modulated by the diurnal cycle and
        // per-taxi activity.
        let cycle_factor = match &config.diurnal {
            Some(cycle) if cycle.is_night(step) => cycle.night_factor,
            _ => 1.0,
        };
        let mut requesting: Vec<bool> = (0..config.taxis)
            .map(|taxi| {
                let activity = config.taxi_activity.get(taxi).copied().unwrap_or(1.0);
                rng.gen_f64() < config.request_prob * cycle_factor * activity
            })
            .collect();
        // Joint-interest rule: a co-located pair partner joins the request
        // with probability `joint_request_prob`.
        for p in 0..config.taxis / 2 {
            let (i, j) = (2 * p, 2 * p + 1);
            if taxi_zones[i] == taxi_zones[j] && requesting[i] != requesting[j] {
                let joins = rng.gen_f64() < config.joint_request_prob;
                if joins {
                    requesting[i] = true;
                    requesting[j] = true;
                }
            }
        }
        // Group requesting taxis by zone, preserving item order.
        let mut by_zone: Vec<Vec<u32>> = vec![Vec::new(); zones];
        for (taxi, &zone) in taxi_zones.iter().enumerate() {
            if requesting[taxi] {
                by_zone[zone as usize].push(taxi as u32);
            }
        }
        for (zone, items) in by_zone.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let time = (step as f64 + 1.0 + zone as f64 / (zones as f64 + 1.0)) * dt;
            builder = builder.push(zone as u32, time, items);
        }
    }
    builder
        .build()
        .expect("generated workload always satisfies the sequence invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::ItemId;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::small(42);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert!(
            a.len() > 50,
            "expected a non-trivial sequence, got {}",
            a.len()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadConfig::small(1));
        let b = generate(&WorkloadConfig::small(2));
        assert_ne!(a, b);
    }

    #[test]
    fn sequence_respects_model_invariants() {
        // `generate` goes through the validating builder; just double-check
        // the shape.
        let seq = generate(&WorkloadConfig::small(7));
        assert_eq!(seq.servers(), 12);
        assert_eq!(seq.items(), 4);
        let mut last = 0.0;
        for r in seq.requests() {
            assert!(r.time > last);
            last = r.time;
            assert!(!r.items.is_empty());
        }
    }

    #[test]
    fn affinity_orders_pair_jaccard() {
        // Pair 0 has affinity 0.8, pair 1 has 0.2: J(d1,d2) > J(d3,d4).
        let seq = generate(&WorkloadConfig::small(11));
        let pv_hi = seq.pair_view(ItemId(0), ItemId(1));
        let pv_lo = seq.pair_view(ItemId(2), ItemId(3));
        assert!(
            pv_hi.jaccard() > pv_lo.jaccard(),
            "J(hi)={} J(lo)={}",
            pv_hi.jaccard(),
            pv_lo.jaccard()
        );
    }

    #[test]
    fn paper_like_config_produces_a_jaccard_spread() {
        let seq = generate(&WorkloadConfig::paper_like(3));
        let mut js: Vec<f64> = (0..5)
            .map(|p| seq.pair_view(ItemId(2 * p), ItemId(2 * p + 1)).jaccard())
            .collect();
        // Affinities 0.95 … 0.05 should map to a decreasing-ish spread with
        // a wide range.
        let max = js.iter().cloned().fold(0.0, f64::max);
        let min = js.iter().cloned().fold(1.0, f64::min);
        assert!(max > 0.4, "max J {max} too small; js={js:?}");
        assert!(min < 0.2, "min J {min} too large; js={js:?}");
        js.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(js[0] > js[4]);
    }

    #[test]
    fn request_times_follow_step_granularity() {
        let cfg = WorkloadConfig::small(5);
        let seq = generate(&cfg);
        for r in seq.requests() {
            let steps = r.time / cfg.step_duration;
            // Each time is (step + 1 + frac) · dt with frac < 1.
            assert!(steps >= 1.0 - 1e-9);
            assert!(steps <= (cfg.steps as f64) + 1.0);
        }
    }

    #[test]
    fn diurnal_cycle_quiets_the_night() {
        let mut day_cfg = WorkloadConfig::small(31);
        day_cfg.steps = 2000;
        let mut night_cfg = day_cfg.clone();
        night_cfg.diurnal = Some(DiurnalCycle {
            period_steps: 200,
            night_factor: 0.1,
        });
        let flat = generate(&day_cfg);
        let cyclic = generate(&night_cfg);
        // Less traffic overall with quiet nights.
        assert!(cyclic.len() < flat.len());
        // Requests inside night windows are rare: count per half-period.
        let cycle = night_cfg.diurnal.unwrap();
        let step_of = |t: f64| (t / night_cfg.step_duration) as usize;
        let night: usize = cyclic
            .requests()
            .iter()
            .filter(|r| cycle.is_night(step_of(r.time)))
            .count();
        let day = cyclic.len() - night;
        assert!(
            (night as f64) < 0.4 * day as f64,
            "night {night} vs day {day}"
        );
    }

    #[test]
    fn is_night_splits_the_period_in_half() {
        let c = DiurnalCycle {
            period_steps: 10,
            night_factor: 0.5,
        };
        for s in 0..5 {
            assert!(!c.is_night(s), "step {s}");
            assert!(c.is_night(s + 5), "step {}", s + 5);
        }
        assert!(!c.is_night(10));
    }

    #[test]
    fn taxi_activity_skews_item_counts() {
        let mut cfg = WorkloadConfig::small(17);
        cfg.steps = 1500;
        cfg.pair_affinity = vec![0.0, 0.0]; // isolate the activity effect
        cfg.joint_request_prob = 0.0;
        cfg.taxi_activity = vec![2.0, 1.0, 1.0, 0.2];
        let seq = generate(&cfg);
        let busy = seq.count_containing(ItemId(0));
        let normal = seq.count_containing(ItemId(1));
        let idle = seq.count_containing(ItemId(3));
        assert!(busy > normal, "busy {busy} vs normal {normal}");
        assert!(idle < normal / 2, "idle {idle} vs normal {normal}");
    }

    #[test]
    fn json_round_trip_of_config() {
        use mcs_model::json::{parse, FromJson, ToJson};
        let mut cfg = WorkloadConfig::paper_like(9);
        cfg.diurnal = Some(DiurnalCycle {
            period_steps: 40,
            night_factor: 0.5,
        });
        cfg.taxi_activity = vec![1.0, 0.5];
        let j = cfg.to_json().to_string_pretty();
        let back = WorkloadConfig::from_json(&parse(&j).unwrap()).unwrap();
        assert_eq!(cfg, back);
        assert_eq!(generate(&cfg), generate(&back));
    }

    #[test]
    fn config_missing_optional_fields_defaults() {
        use mcs_model::json::{parse, FromJson, Json, ToJson};
        let cfg = WorkloadConfig::small(2);
        // Simulate an older file lacking the late-added optional fields.
        let j = cfg.to_json();
        let Json::Obj(fields) = j else {
            panic!("config serializes as object")
        };
        let pruned = Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "diurnal" && k != "taxi_activity")
                .collect(),
        );
        let back = WorkloadConfig::from_json(&parse(&pruned.to_string()).unwrap()).unwrap();
        assert_eq!(back.diurnal, None);
        assert!(back.taxi_activity.is_empty());
        assert_eq!(back.grid, cfg.grid);
    }
}

//! Core-algorithm throughput benchmarks: the substrate DP, the greedy
//! baseline, Phase 1 correlation analysis, the full two-phase DP_Greedy
//! pipeline, and — via the engine registry — every registered solver on
//! one shared workload (new algorithms get benchmarked for free).

use mcs_bench::harness::{black_box, Criterion};
use mcs_bench::{criterion_group, criterion_main};

use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig};
use mcs_bench::{bench_model, bench_trace, bench_workload};
use mcs_correlation::{greedy_matching, JaccardMatrix};
use mcs_engine::RunContext;
use mcs_offline::{greedy::greedy, optimal};

fn bench_substrate(c: &mut Criterion) {
    let model = bench_model();
    let trace = bench_trace(1000, 50);
    let mut g = c.benchmark_group("substrate");
    g.bench_function("optimal_offline_n1000_m50", |b| {
        b.iter(|| optimal(black_box(&trace), black_box(&model)).cost)
    });
    g.bench_function("simple_greedy_n1000_m50", |b| {
        b.iter(|| greedy(black_box(&trace), black_box(&model)).cost)
    });
    g.finish();
}

fn bench_phase1(c: &mut Criterion) {
    let seq = bench_workload(1500);
    let mut g = c.benchmark_group("phase1");
    g.bench_function("jaccard_matrix", |b| {
        b.iter(|| JaccardMatrix::from_sequence(black_box(&seq)))
    });
    let matrix = JaccardMatrix::from_sequence(&seq);
    g.bench_function("greedy_matching", |b| {
        b.iter(|| greedy_matching(black_box(&matrix), 0.3))
    });
    g.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let seq = bench_workload(1500);
    let config = DpGreedyConfig::new(bench_model()).with_theta(0.3);
    c.bench_function("dp_greedy_full_pipeline", |b| {
        b.iter(|| dp_greedy(black_box(&seq), black_box(&config)).total_cost)
    });
}

fn bench_registry(c: &mut Criterion) {
    let seq = bench_workload(1500);
    let ctx = RunContext::new(bench_model()).with_theta(0.3);
    let mut g = c.benchmark_group("registry");
    for solver in mcs_engine::solvers() {
        if solver
            .request_limit()
            .is_some_and(|limit| seq.requests().len() > limit)
        {
            continue; // exponential solvers skip the 1500-step workload
        }
        let label = format!("solve_{}", solver.name());
        g.bench_function(&label, |b| {
            b.iter(|| solver.solve(black_box(&seq), black_box(&ctx)).total_cost)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_substrate, bench_phase1, bench_full_pipeline, bench_registry
}
criterion_main!(benches);

//! E9 — scaling benches validating the paper's complexity claims:
//! Section V analyses `O(mn²)` service time with `O(mn)` space; the
//! substrate DP itself is quadratic in `n` and insensitive to `m` (its
//! per-server scan is linear), and the pre-scan is `O(mn)`.

use mcs_bench::harness::{black_box, BenchmarkId, Criterion, Throughput};
use mcs_bench::{criterion_group, criterion_main};

use dp_greedy::prescan::PreScan;
use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig};
use mcs_bench::{bench_model, bench_trace, bench_workload};
use mcs_offline::optimal;

fn scaling_in_n(c: &mut Criterion) {
    let model = bench_model();
    let mut g = c.benchmark_group("optimal_vs_n");
    for n in [250usize, 500, 1000, 2000] {
        let trace = bench_trace(n, 50);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, tr| {
            b.iter(|| optimal(black_box(tr), black_box(&model)).cost)
        });
    }
    g.finish();
}

fn scaling_in_m(c: &mut Criterion) {
    let model = bench_model();
    let mut g = c.benchmark_group("optimal_vs_m");
    for m in [5u32, 20, 50, 200] {
        let trace = bench_trace(1000, m);
        g.bench_with_input(BenchmarkId::from_parameter(m), &trace, |b, tr| {
            b.iter(|| optimal(black_box(tr), black_box(&model)).cost)
        });
    }
    g.finish();
}

fn prescan_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("prescan_vs_n");
    for n in [1000usize, 4000, 16000] {
        let trace = bench_trace(n, 50);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, tr| {
            b.iter(|| PreScan::build(black_box(tr)).len())
        });
    }
    g.finish();
}

fn pipeline_scaling(c: &mut Criterion) {
    let config = DpGreedyConfig::new(bench_model()).with_theta(0.3);
    let mut g = c.benchmark_group("dp_greedy_vs_steps");
    g.sample_size(10);
    for steps in [500usize, 1000, 2000] {
        let seq = bench_workload(steps);
        g.throughput(Throughput::Elements(seq.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(steps), &seq, |b, s| {
            b.iter(|| dp_greedy(black_box(s), black_box(&config)).total_cost)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = scaling_in_n, scaling_in_m, prescan_scaling, pipeline_scaling
}
criterion_main!(benches);

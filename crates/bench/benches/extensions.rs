//! Benches for the extension modules: the fast covering DP, the
//! single-copy substrate, heterogeneous exact/greedy, the multi-item and
//! windowed DP_Greedy variants, and on-line DP_Greedy.

use mcs_bench::harness::{black_box, BenchmarkId, Criterion};
use mcs_bench::{criterion_group, criterion_main};

use dp_greedy::multi_item::{dp_greedy_multi, MultiItemConfig};
use dp_greedy::two_phase::DpGreedyConfig;
use dp_greedy::windowed::{dp_greedy_windowed, WindowedConfig};
use mcs_bench::{bench_model, bench_trace, bench_workload};
use mcs_model::HeteroCostModel;
use mcs_offline::hetero::{hetero_exact, hetero_greedy};
use mcs_offline::optimal;
use mcs_offline::optimal_fast::optimal_fast_cost;
use mcs_offline::single_copy::single_copy_optimal;
use mcs_online::online_dpg::{online_dp_greedy, OnlineDpgConfig};

fn fast_vs_quadratic(c: &mut Criterion) {
    let model = bench_model();
    let mut g = c.benchmark_group("covering_dp_variants");
    for n in [1000usize, 4000] {
        let trace = bench_trace(n, 50);
        g.bench_with_input(BenchmarkId::new("quadratic", n), &trace, |b, tr| {
            b.iter(|| optimal(black_box(tr), black_box(&model)).cost)
        });
        g.bench_with_input(BenchmarkId::new("nlogn", n), &trace, |b, tr| {
            b.iter(|| optimal_fast_cost(black_box(tr), black_box(&model)))
        });
    }
    g.finish();
}

fn single_copy_bench(c: &mut Criterion) {
    let model = bench_model();
    let trace = bench_trace(1000, 50);
    c.bench_function("single_copy_optimal_n1000_m50", |b| {
        b.iter(|| single_copy_optimal(black_box(&trace), black_box(&model)).cost)
    });
}

fn hetero_bench(c: &mut Criterion) {
    let model = HeteroCostModel::uniform(8, 2.0, 4.0, 0.8).expect("valid");
    let trace = bench_trace(12, 8);
    let mut g = c.benchmark_group("hetero");
    g.sample_size(10);
    g.bench_function("exact_n12_m8", |b| {
        b.iter(|| hetero_exact(black_box(&trace), black_box(&model)))
    });
    let big = bench_trace(1000, 8);
    g.bench_function("greedy_n1000_m8", |b| {
        b.iter(|| hetero_greedy(black_box(&big), black_box(&model)))
    });
    g.finish();
}

fn variants_bench(c: &mut Criterion) {
    let seq = bench_workload(800);
    let model = bench_model();
    let mut g = c.benchmark_group("dp_greedy_variants");
    g.sample_size(10);
    g.bench_function("multi_item", |b| {
        b.iter(|| dp_greedy_multi(black_box(&seq), &MultiItemConfig::new(model)).total_cost)
    });
    g.bench_function("windowed", |b| {
        b.iter(|| {
            dp_greedy_windowed(
                black_box(&seq),
                &WindowedConfig {
                    inner: DpGreedyConfig::new(model).with_theta(0.3),
                    window: 20.0,
                },
            )
            .total_cost
        })
    });
    g.bench_function("online_dpg", |b| {
        b.iter(|| online_dp_greedy(black_box(&seq), &OnlineDpgConfig::new(model)).cost)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = fast_vs_quadratic, single_copy_bench, hetero_bench, variants_bench
}
criterion_main!(benches);

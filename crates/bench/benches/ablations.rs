//! Ablation benches for the design choices called out in DESIGN.md §7.
//!
//! Timing side (this file): greedy vs exact matching cost, and the
//! substrate DP against the always-bridge greedy. The *quality* side of
//! the same ablations (how much cost each choice saves) is printed by
//! `figures --ablations` from `mcs-experiments`.

use mcs_bench::harness::{black_box, Criterion};
use mcs_bench::{criterion_group, criterion_main};

use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig};
use mcs_bench::{bench_model, bench_trace, bench_workload};
use mcs_correlation::exact::exact_matching;
use mcs_correlation::{greedy_matching, JaccardMatrix};
use mcs_offline::{greedy::greedy, optimal};

/// Matching ablation: greedy threshold matching vs exact bitmask DP.
fn ablation_matching(c: &mut Criterion) {
    // A synthetic 16-item matrix (bitmask DP over 2^16 states).
    let mut cfg = mcs_trace::workload::WorkloadConfig::paper_like(mcs_bench::BENCH_SEED);
    cfg.taxis = 16;
    cfg.pair_affinity = vec![0.9, 0.75, 0.6, 0.45, 0.3, 0.2, 0.1, 0.05];
    cfg.steps = 600;
    let seq = mcs_trace::workload::generate(&cfg);
    let matrix = JaccardMatrix::from_sequence(&seq);

    let mut g = c.benchmark_group("ablation_matching");
    g.bench_function("greedy_k16", |b| {
        b.iter(|| greedy_matching(black_box(&matrix), 0.1).pairs.len())
    });
    g.sample_size(10);
    g.bench_function("exact_k16", |b| {
        b.iter(|| exact_matching(black_box(&matrix), 0.1).pairs.len())
    });
    g.finish();
}

/// Bridging ablation: the covering DP vs the always-bridge greedy — the
/// gap Theorem 1's cut argument bounds by 2×.
fn ablation_bridging(c: &mut Criterion) {
    let model = bench_model();
    let trace = bench_trace(1000, 50);
    let mut g = c.benchmark_group("ablation_bridging");
    g.bench_function("covering_dp", |b| {
        b.iter(|| optimal(black_box(&trace), black_box(&model)).cost)
    });
    g.bench_function("always_bridge_greedy", |b| {
        b.iter(|| greedy(black_box(&trace), black_box(&model)).cost)
    });
    g.finish();
}

/// Package-arm ablation: faithful vs strict package availability in the
/// singleton greedy (quality differs; timing should not).
fn ablation_package_arm(c: &mut Criterion) {
    let seq = bench_workload(800);
    let faithful = DpGreedyConfig::new(bench_model()).with_theta(0.3);
    let strict = faithful.strict();
    let mut g = c.benchmark_group("ablation_package_arm");
    g.sample_size(10);
    g.bench_function("faithful", |b| {
        b.iter(|| dp_greedy(black_box(&seq), black_box(&faithful)).total_cost)
    });
    g.bench_function("strict", |b| {
        b.iter(|| dp_greedy(black_box(&seq), black_box(&strict)).total_cost)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = ablation_matching, ablation_bridging, ablation_package_arm
}
criterion_main!(benches);

//! Figure-regeneration benches: one group per paper figure, timing the
//! end-to-end runner at a reduced workload size. `cargo bench -p
//! mcs-bench figures` therefore regenerates every evaluation artefact (the
//! printed tables come from the `figures` binary; these measure the cost
//! of producing them).

use mcs_bench::harness::{black_box, Criterion};
use mcs_bench::{criterion_group, criterion_main};

use mcs_experiments::{fig09, fig10, fig11, fig12, fig13, online_exp, ratio_exp};
use mcs_trace::workload::WorkloadConfig;

fn reduced_config() -> WorkloadConfig {
    let mut cfg = WorkloadConfig::paper_like(mcs_bench::BENCH_SEED);
    cfg.steps = 600;
    cfg
}

fn fig09_bench(c: &mut Criterion) {
    let cfg = reduced_config();
    c.bench_function("fig09_trace_distribution", |b| {
        b.iter(|| fig09::run(black_box(&cfg)).requests)
    });
}

fn fig10_bench(c: &mut Criterion) {
    let cfg = reduced_config();
    c.bench_function("fig10_pair_spectrum", |b| {
        b.iter(|| fig10::run(black_box(&cfg)).spectrum.len())
    });
}

fn fig11_bench(c: &mut Criterion) {
    let cfg = reduced_config();
    c.bench_function("fig11_jaccard_sweep", |b| {
        b.iter(|| fig11::run(black_box(&cfg)).rows.len())
    });
}

fn fig12_bench(c: &mut Criterion) {
    let cfg = reduced_config();
    let rhos = [0.2, 1.0, 2.0, 3.0, 5.0];
    c.bench_function("fig12_rho_sweep", |b| {
        b.iter(|| fig12::run(black_box(&cfg), black_box(&rhos)).rows.len())
    });
}

fn fig13_bench(c: &mut Criterion) {
    let cfg = reduced_config();
    c.bench_function("fig13_alpha_sweep", |b| {
        b.iter(|| fig13::run(black_box(&cfg)).rows.len())
    });
}

fn ratio_bench(c: &mut Criterion) {
    c.bench_function("theorem1_ratio_sampling", |b| {
        b.iter(|| {
            ratio_exp::run(black_box(40), mcs_bench::BENCH_SEED)
                .rows
                .len()
        })
    });
}

fn online_bench(c: &mut Criterion) {
    let cfg = reduced_config();
    c.bench_function("online_competitive_ratios", |b| {
        b.iter(|| online_exp::run(black_box(&cfg)).rows.len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig09_bench, fig10_bench, fig11_bench, fig12_bench, fig13_bench,
              ratio_bench, online_bench
}
criterion_main!(benches);

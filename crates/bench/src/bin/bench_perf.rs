//! Performance-trajectory bench: measures DP_Greedy throughput across
//! trace sizes and worker-thread counts, verifies the parallel paths are
//! byte-identical to serial, and writes `BENCH_perf.json`.
//!
//! Per trace size the bench records:
//!
//! * end-to-end `dp_greedy` engine-solver throughput (requests/sec) at
//!   each thread count, with speedup relative to the 1-thread run;
//! * Phase 1 co-occurrence counting time, serial vs sharded;
//! * the Phase-1 kernel duel: hash-map pair scan vs bitset popcount
//!   scan, with a bit-identity gate on the candidate lists and a
//!   regression gate on the bitset kernel's relative speed;
//! * pair-table footprint: the dense `k·(k−1)/2` triangle vs the sparse
//!   observed-pairs table;
//! * a byte-identity flag: the decision-ledger JSONL and the bit pattern
//!   of `total_cost` at every thread count must equal the serial run's.
//!
//! `--smoke` shrinks the sweep for CI and additionally diffs parallel vs
//! serial output byte-for-byte across **every** solver in the engine
//! registry — and hash-kernel vs bitset-kernel output under the
//! `MCS_PHASE1` knob. `--baseline BENCH_perf.json --max-regression 2.0`
//! gates serial throughput against a committed baseline, per trace size
//! where the sizes overlap (largest-vs-largest otherwise); the document
//! carries a `host` fingerprint, and a baseline taken on a different
//! machine shape only warns instead of gating.
//!
//! Thread counts are applied through the `MCS_THREADS` environment knob
//! (see `mcs_model::par`), set between measurements while only the main
//! thread is live — worker threads are scoped and joined inside each
//! measured call.
//!
//! Usage: `bench_perf [--smoke] [--sizes A,B,..] [--threads A,B,..]
//! [--taxis K] [--reps N] [--out PATH] [--baseline PATH]
//! [--max-regression X]`.

use std::time::Instant;

use mcs_bench::harness::black_box;
use mcs_bench::{bench_model, perf_workload};
use mcs_correlation::{BitsetIncidence, CoOccurrence, SparseCoOccurrence, PHASE1_ENV};
use mcs_engine::{solvers, CachingSolver, RunContext};
use mcs_model::json::{parse, Json};
use mcs_model::par::THREADS_ENV;
use mcs_model::RequestSeq;

struct Args {
    smoke: bool,
    sizes: Vec<usize>,
    threads: Vec<usize>,
    taxis: usize,
    reps: usize,
    out: String,
    baseline: Option<String>,
    max_regression: f64,
}

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| format!("bad list entry `{p}`"))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        sizes: vec![4_000, 16_000, 64_000],
        threads: vec![1, 2, 4],
        taxis: 24,
        reps: 3,
        out: "BENCH_perf.json".to_string(),
        baseline: None,
        max_regression: 2.0,
    };
    let mut sizes_set = false;
    let mut threads_set = false;
    let mut reps_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--sizes" => {
                args.sizes = parse_list(&val("--sizes")?)?;
                sizes_set = true;
            }
            "--threads" => {
                args.threads = parse_list(&val("--threads")?)?;
                threads_set = true;
            }
            "--taxis" => args.taxis = val("--taxis")?.parse().map_err(|_| "bad --taxis")?,
            "--reps" => {
                args.reps = val("--reps")?.parse::<usize>().map_err(|_| "bad --reps")?;
                reps_set = true;
            }
            "--out" => args.out = val("--out")?,
            "--baseline" => args.baseline = Some(val("--baseline")?),
            "--max-regression" => {
                args.max_regression = val("--max-regression")?
                    .parse()
                    .map_err(|_| "bad --max-regression")?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.smoke {
        if !sizes_set {
            args.sizes = vec![200, 400];
        }
        if !threads_set {
            args.threads = vec![1, 2, 4];
        }
        if !reps_set {
            args.reps = 2;
        }
    }
    args.reps = args.reps.max(1);
    if args.sizes.is_empty() || args.threads.is_empty() {
        return Err("need at least one size and one thread count".into());
    }
    if !args.threads.contains(&1) {
        // The serial run is the correctness and speedup reference.
        args.threads.insert(0, 1);
    }
    args.threads.sort_unstable();
    args.threads.dedup();
    Ok(args)
}

fn set_threads(n: usize) {
    // Only the main thread is live here: every parallel section in the
    // workspace uses scoped threads joined before returning.
    std::env::set_var(THREADS_ENV, n.to_string());
}

fn set_kernel(name: Option<&str>) {
    match name {
        Some(k) => std::env::set_var(PHASE1_ENV, k),
        None => std::env::remove_var(PHASE1_ENV),
    }
}

/// The machine shape the numbers were taken on. Baselines are only
/// throughput-comparable when this shape matches.
fn host_fingerprint(threads: &[usize], available: usize) -> Json {
    Json::Obj(vec![
        ("logical_cores".into(), Json::Num(available as f64)),
        (
            "threads_swept".into(),
            Json::Arr(threads.iter().map(|&t| Json::Num(t as f64)).collect()),
        ),
        ("os".into(), Json::Str(std::env::consts::OS.into())),
        ("arch".into(), Json::Str(std::env::consts::ARCH.into())),
    ])
}

fn min_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The serial reference output of one solver: ledger JSONL plus the bit
/// pattern of the claimed total. Byte equality of this pair across
/// thread counts is the bench's determinism contract.
fn solver_fingerprint(s: &dyn CachingSolver, seq: &RequestSeq, ctx: &RunContext) -> (String, u64) {
    let solution = s.solve(seq, ctx);
    (
        solution.ledger().to_jsonl_string(),
        solution.total_cost.to_bits(),
    )
}

/// Byte-diffs hash-kernel vs bitset-kernel output for every registry
/// solver on `seq` at 1 thread. Returns the names that mismatched.
fn kernel_identity_check(seq: &RequestSeq, ctx: &RunContext) -> Vec<String> {
    let mut mismatches = Vec::new();
    set_threads(1);
    for s in solvers() {
        if s.request_limit().is_some_and(|l| seq.len() > l) {
            continue;
        }
        set_kernel(Some("hash"));
        let reference = solver_fingerprint(*s, seq, ctx);
        set_kernel(Some("bitset"));
        if solver_fingerprint(*s, seq, ctx) != reference {
            mismatches.push(format!("{} hash vs bitset", s.name()));
        }
    }
    set_kernel(None);
    mismatches
}

/// Byte-diffs parallel vs serial output for every registry solver on
/// `seq`. Returns the names that mismatched (empty = all identical).
fn registry_identity_check(seq: &RequestSeq, ctx: &RunContext, threads: &[usize]) -> Vec<String> {
    let mut mismatches = Vec::new();
    for s in solvers() {
        if s.request_limit().is_some_and(|l| seq.len() > l) {
            continue;
        }
        set_threads(1);
        let reference = solver_fingerprint(*s, seq, ctx);
        for &t in threads.iter().filter(|&&t| t != 1) {
            set_threads(t);
            let got = solver_fingerprint(*s, seq, ctx);
            if got != reference {
                mismatches.push(format!("{} @ {t} threads", s.name()));
            }
        }
    }
    set_threads(1);
    mismatches
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_perf: {e}");
            eprintln!(
                "usage: bench_perf [--smoke] [--sizes A,B,..] [--threads A,B,..] [--taxis K] \
                 [--reps N] [--out PATH] [--baseline PATH] [--max-regression X]"
            );
            std::process::exit(2);
        }
    };

    let available = std::thread::available_parallelism().map_or(1, |p| p.get());
    let model = bench_model();
    let ctx = RunContext::new(model);
    let solver = mcs_engine::find("dp_greedy").expect("dp_greedy is registered");
    println!(
        "bench_perf: sizes {:?} x threads {:?} ({} hw threads), taxis {}, {} reps",
        args.sizes, args.threads, available, args.taxis, args.reps
    );

    let mut failed = false;
    let mut size_docs = Vec::new();
    let mut serial_rps_by_steps: Vec<(usize, f64)> = Vec::new();
    let mut largest_serial_rps = 0.0f64;
    let mut largest_best_speedup = 0.0f64;
    let mut largest_bitset_speedup = 0.0f64;

    for &steps in &args.sizes {
        let seq = perf_workload(steps, args.taxis);
        let requests = seq.len();
        println!(
            "== {steps} steps ({requests} requests, {} items)",
            seq.items()
        );

        // Phase 1 footprint and sharded-counting time.
        set_threads(1);
        let dense = CoOccurrence::from_sequence_serial(&seq);
        let sparse = SparseCoOccurrence::from_sequence_serial(&seq);
        let phase1_serial = min_secs(args.reps, || CoOccurrence::from_sequence_serial(&seq));
        let shards = *args.threads.last().unwrap();
        set_threads(shards);
        let phase1_sharded = min_secs(args.reps, || {
            CoOccurrence::from_sequence_sharded(&seq, shards)
        });
        if CoOccurrence::from_sequence_sharded(&seq, shards) != dense
            || SparseCoOccurrence::from_sequence_sharded(&seq, shards) != sparse
        {
            eprintln!("bench_perf: sharded counts diverged at {steps} steps");
            failed = true;
        }

        // Phase-1 kernel duel at 1 thread: the hash-map pair scan vs the
        // bitset popcount scan, over build + candidate enumeration. The
        // two must produce bit-identical candidate lists.
        let hash_scan_secs = min_secs(args.reps, || {
            SparseCoOccurrence::from_sequence_serial(&seq).pairs()
        });
        let bitset_scan_secs = min_secs(args.reps, || BitsetIncidence::from_sequence(&seq).pairs());
        let bitset_speedup = hash_scan_secs / bitset_scan_secs;
        let hash_pairs = sparse.pairs();
        let bitset_pairs = BitsetIncidence::from_sequence(&seq).pairs();
        let pairs_identical = hash_pairs.len() == bitset_pairs.len()
            && hash_pairs
                .iter()
                .zip(&bitset_pairs)
                .all(|(h, b)| h.0 == b.0 && h.1 == b.1 && h.2.to_bits() == b.2.to_bits());
        if !pairs_identical {
            eprintln!("bench_perf: bitset pair scan diverged from hash at {steps} steps");
            failed = true;
        }
        // The speed gate only applies where the auto heuristic would
        // actually select the bitset kernel — tiny traces route to hash
        // by design, and the bitset build cost dominating there is not
        // a regression.
        let auto_picks_bitset = matches!(
            mcs_correlation::Phase1Stats::from_sequence(&seq),
            mcs_correlation::Phase1Stats::Bitset(_)
        );
        if auto_picks_bitset && bitset_scan_secs > hash_scan_secs * args.max_regression {
            eprintln!(
                "bench_perf: bitset pair scan at {steps} steps ({bitset_scan_secs:.6} s) \
                 regressed more than {}x against hash ({hash_scan_secs:.6} s)",
                args.max_regression
            );
            failed = true;
        }
        println!(
            "  phase1 pair scan: hash {hash_scan_secs:.6} s, bitset {bitset_scan_secs:.6} s \
             ({bitset_speedup:.2}x), auto_picks_bitset={auto_picks_bitset}, \
             identical={pairs_identical}"
        );
        if steps == *args.sizes.iter().max().unwrap() {
            largest_bitset_speedup = bitset_speedup;
        }

        // End-to-end solver throughput per thread count.
        set_threads(1);
        let reference = solver_fingerprint(solver, &seq, &ctx);
        let mut runs = Vec::new();
        let mut serial_secs = f64::NAN;
        for &t in &args.threads {
            set_threads(t);
            let secs = min_secs(args.reps, || solver.solve(&seq, &ctx));
            let identical = solver_fingerprint(solver, &seq, &ctx) == reference;
            if t == 1 {
                serial_secs = secs;
            }
            if !identical {
                eprintln!("bench_perf: output at {t} threads differs from serial!");
                failed = true;
            }
            let rps = requests as f64 / secs;
            let speedup = serial_secs / secs;
            println!(
                "  {t:>3} threads  {secs:>12.6} s  {rps:>12.0} req/s  {speedup:.2}x  identical={identical}"
            );
            runs.push(Json::Obj(vec![
                ("threads".into(), Json::Num(t as f64)),
                ("secs".into(), Json::Num(secs)),
                ("requests_per_sec".into(), Json::Num(rps)),
                ("speedup_vs_serial".into(), Json::Num(speedup)),
                ("output_identical".into(), Json::Bool(identical)),
            ]));
            if steps == *args.sizes.iter().max().unwrap() {
                largest_serial_rps = requests as f64 / serial_secs;
                largest_best_speedup = largest_best_speedup.max(speedup);
            }
        }
        serial_rps_by_steps.push((steps, requests as f64 / serial_secs));
        set_threads(1);

        size_docs.push(Json::Obj(vec![
            ("steps".into(), Json::Num(steps as f64)),
            ("requests".into(), Json::Num(requests as f64)),
            ("items".into(), Json::Num(seq.items() as f64)),
            (
                "dense_pair_table_bytes".into(),
                Json::Num(dense.pair_table_bytes() as f64),
            ),
            (
                "sparse_pair_table_bytes".into(),
                Json::Num(sparse.pair_table_bytes() as f64),
            ),
            (
                "observed_pairs".into(),
                Json::Num(sparse.observed_pairs() as f64),
            ),
            ("phase1_serial_secs".into(), Json::Num(phase1_serial)),
            ("phase1_sharded_secs".into(), Json::Num(phase1_sharded)),
            ("hash_pair_scan_secs".into(), Json::Num(hash_scan_secs)),
            ("bitset_pair_scan_secs".into(), Json::Num(bitset_scan_secs)),
            ("bitset_speedup_vs_hash".into(), Json::Num(bitset_speedup)),
            ("bitset_pairs_identical".into(), Json::Bool(pairs_identical)),
            ("auto_picks_bitset".into(), Json::Bool(auto_picks_bitset)),
            ("runs".into(), Json::Arr(runs)),
        ]));
    }

    // Smoke mode: parallel-vs-serial byte identity across the registry,
    // then hash-vs-bitset byte identity under the MCS_PHASE1 knob.
    let mut registry_checked = false;
    if args.smoke {
        let seq = perf_workload(*args.sizes.first().unwrap(), 10);
        let mismatches = registry_identity_check(&seq, &ctx, &args.threads);
        registry_checked = true;
        if mismatches.is_empty() {
            println!(
                "registry identity: all solvers byte-identical across threads {:?}",
                args.threads
            );
        } else {
            eprintln!("bench_perf: registry mismatches: {}", mismatches.join(", "));
            failed = true;
        }
        let kernel_mismatches = kernel_identity_check(&seq, &ctx);
        if kernel_mismatches.is_empty() {
            println!("kernel identity: all solvers byte-identical under MCS_PHASE1=hash|bitset");
        } else {
            eprintln!(
                "bench_perf: kernel mismatches: {}",
                kernel_mismatches.join(", ")
            );
            failed = true;
        }
    }

    let doc = Json::Obj(vec![
        ("smoke".into(), Json::Bool(args.smoke)),
        ("threads_available".into(), Json::Num(available as f64)),
        ("host".into(), host_fingerprint(&args.threads, available)),
        ("taxis".into(), Json::Num(args.taxis as f64)),
        ("reps".into(), Json::Num(args.reps as f64)),
        (
            "registry_identity_checked".into(),
            Json::Bool(registry_checked),
        ),
        (
            "largest_serial_requests_per_sec".into(),
            Json::Num(largest_serial_rps),
        ),
        (
            "largest_best_speedup".into(),
            Json::Num(largest_best_speedup),
        ),
        (
            "largest_bitset_speedup_vs_hash".into(),
            Json::Num(largest_bitset_speedup),
        ),
        ("sizes".into(), Json::Arr(size_docs)),
    ]);
    if let Err(e) = std::fs::write(&args.out, doc.to_string_pretty() + "\n") {
        eprintln!("bench_perf: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);

    // Throughput gate against a committed baseline: every trace size the
    // baseline also measured is compared serial-vs-serial (apples to
    // apples); if no sizes overlap, fall back to largest-vs-largest.
    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| parse(&s).map_err(|e| format!("{e:?}")))
        {
            Ok(base) => {
                // Throughput is only comparable across identical machine
                // shapes; a baseline from a different host (or one with
                // no recorded shape) produces a warning, not a failure.
                let base_cores = base
                    .get("host")
                    .and_then(|h| h.get("logical_cores"))
                    .and_then(Json::as_f64);
                if base_cores != Some(available as f64) {
                    match base_cores {
                        Some(cores) => println!(
                            "bench_perf: baseline {path} was taken on {cores} logical cores, \
                             this host has {available}; skipping throughput gate (shape mismatch)"
                        ),
                        None => println!(
                            "bench_perf: baseline {path} has no host fingerprint; \
                             skipping throughput gate"
                        ),
                    }
                } else {
                    baseline_throughput_gate(
                        &base,
                        &serial_rps_by_steps,
                        largest_serial_rps,
                        args.max_regression,
                        &mut failed,
                    );
                }
            }
            Err(e) => {
                eprintln!("bench_perf: cannot read baseline {path}: {e}");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}

/// Serial-throughput regression gate against a same-shape baseline:
/// every overlapping trace size is compared serial-vs-serial; if no
/// sizes overlap, fall back to largest-vs-largest.
fn baseline_throughput_gate(
    base: &Json,
    serial_rps_by_steps: &[(usize, f64)],
    largest_serial_rps: f64,
    max_regression: f64,
    failed: &mut bool,
) {
    let base_serial_rps = |steps: usize| -> Option<f64> {
        base.get("sizes")?.as_arr()?.iter().find_map(|size| {
            if size.get("steps")?.as_f64()? != steps as f64 {
                return None;
            }
            size.get("runs")?.as_arr()?.iter().find_map(|run| {
                if run.get("threads")?.as_f64()? == 1.0 {
                    run.get("requests_per_sec")?.as_f64()
                } else {
                    None
                }
            })
        })
    };
    let mut compared = 0usize;
    for &(steps, ours) in serial_rps_by_steps {
        let Some(base_rps) = base_serial_rps(steps) else {
            continue;
        };
        compared += 1;
        if ours * max_regression < base_rps {
            eprintln!(
                "bench_perf: serial throughput at {steps} steps ({ours:.0} req/s) \
                 regressed more than {max_regression}x against baseline {base_rps:.0} req/s"
            );
            *failed = true;
        } else {
            println!(
                "{steps} steps: {ours:.0} req/s within {max_regression}x of baseline {base_rps:.0} req/s"
            );
        }
    }
    if compared == 0 {
        let base_rps = base
            .get("largest_serial_requests_per_sec")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if base_rps > 0.0 && largest_serial_rps * max_regression < base_rps {
            eprintln!(
                "bench_perf: serial throughput {largest_serial_rps:.0} req/s regressed \
                 more than {max_regression}x against baseline {base_rps:.0} req/s"
            );
            *failed = true;
        } else {
            println!(
                "no overlapping sizes; largest {largest_serial_rps:.0} req/s within \
                 {max_regression}x of baseline {base_rps:.0} req/s"
            );
        }
    }
}

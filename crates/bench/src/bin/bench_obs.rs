//! Observability-overhead bench: measures what the metrics/span layer and
//! the decision-ledger pipeline cost on top of a bare DP_Greedy solve,
//! and writes the result to `BENCH_obs.json`.
//!
//! Three timed configurations, each min-of-`--reps`:
//!
//! * `obs_off` — `dp_greedy` with the registry disabled
//!   ([`mcs_obs::set_enabled`]`(false)`): the spans capture no `Instant`
//!   and the counters early-return.
//! * `obs_on` — the same solve with the registry enabled (the default),
//!   i.e. the always-on instrumentation cost.
//! * `trace` — the full `dpg trace` pipeline: solve + ledger derivation
//!   (the engine's [`mcs_engine::Solution::ledger`]) + JSONL serialization.
//!
//! Usage: `bench_obs [--steps N] [--reps N] [--out PATH] [--max-overhead X]`.
//! With `--max-overhead X` the process exits 1 when the *instrumentation*
//! overhead ratio (`obs_on / obs_off`) exceeds `X` — that is the part the
//! whole workspace pays even when nobody asks for a trace. The trace
//! pipeline's own ratio is reported alongside but not gated (deriving and
//! serializing a ledger is opt-in work, not overhead).

use std::time::Instant;

use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig};
use mcs_bench::harness::black_box;
use mcs_bench::{bench_model, bench_workload};
use mcs_engine::{find, RunContext};
use mcs_model::json::Json;

struct Args {
    steps: usize,
    reps: usize,
    out: String,
    max_overhead: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        steps: 2000,
        reps: 5,
        out: "BENCH_obs.json".to_string(),
        max_overhead: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--steps" => args.steps = parse(&val("--steps")?)?,
            "--reps" => args.reps = parse::<usize>(&val("--reps")?)?.max(1),
            "--out" => args.out = val("--out")?,
            "--max-overhead" => args.max_overhead = Some(parse(&val("--max-overhead")?)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value `{s}`"))
}

/// Minimum wall-clock seconds of `f` over `reps` runs.
fn min_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn hist_json(h: &mcs_obs::metrics::HistSummary) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::Num(h.count as f64)),
        ("sum_secs".into(), Json::Num(h.sum)),
        ("min_secs".into(), Json::Num(h.min)),
        ("max_secs".into(), Json::Num(h.max)),
    ])
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_obs: {e}");
            eprintln!("usage: bench_obs [--steps N] [--reps N] [--out PATH] [--max-overhead X]");
            std::process::exit(2);
        }
    };

    let seq = bench_workload(args.steps);
    let model = bench_model();
    let config = DpGreedyConfig::new(model);
    println!(
        "bench_obs: {} requests over {} items, {} reps",
        seq.len(),
        seq.items(),
        args.reps
    );

    // Baseline: the solver with the whole observability layer disabled.
    mcs_obs::set_enabled(false);
    let obs_off = min_secs(args.reps, || dp_greedy(&seq, &config));

    // Instrumentation on (the workspace default): spans + counters live.
    mcs_obs::set_enabled(true);
    mcs_obs::reset();
    let obs_on = min_secs(args.reps, || dp_greedy(&seq, &config));
    let phase_snapshot = mcs_obs::snapshot();

    // The full trace pipeline: solve, derive the ledger, serialize JSONL
    // — the same path `dpg trace solve` takes through the engine registry.
    let solver = find("dp_greedy").expect("dp_greedy is registered");
    let ctx = RunContext::new(model);
    let solution = solver.solve(&seq, &ctx);
    let ledger = solution.ledger();
    let events = ledger.len();
    let trace = min_secs(args.reps, || {
        let solution = solver.solve(&seq, &ctx);
        let ledger = solution.ledger();
        ledger.to_jsonl_string()
    });
    let derive_secs = min_secs(args.reps, || solution.ledger());
    let serialize_secs = min_secs(args.reps, || ledger.to_jsonl_string());

    let overhead_instrumentation = obs_on / obs_off;
    let overhead_trace = trace / obs_off;
    let events_per_sec = if derive_secs + serialize_secs > 0.0 {
        events as f64 / (derive_secs + serialize_secs)
    } else {
        f64::INFINITY
    };

    println!("  dp_greedy, obs off     {:>12.6} s", obs_off);
    println!(
        "  dp_greedy, obs on      {:>12.6} s  ({overhead_instrumentation:.3}x)",
        obs_on
    );
    println!(
        "  trace pipeline         {:>12.6} s  ({overhead_trace:.3}x, {events} events)",
        trace
    );
    println!(
        "  ledger derive+emit     {:>12.6} s  ({events_per_sec:.0} events/s)",
        derive_secs + serialize_secs
    );

    let phases = Json::Obj(
        phase_snapshot
            .hists
            .iter()
            .map(|(name, h)| ((*name).to_string(), hist_json(h)))
            .collect(),
    );
    let doc = Json::Obj(vec![
        ("steps".into(), Json::Num(args.steps as f64)),
        ("reps".into(), Json::Num(args.reps as f64)),
        ("requests".into(), Json::Num(seq.len() as f64)),
        ("items".into(), Json::Num(seq.items() as f64)),
        ("ledger_events".into(), Json::Num(events as f64)),
        ("obs_off_secs".into(), Json::Num(obs_off)),
        ("obs_on_secs".into(), Json::Num(obs_on)),
        ("trace_secs".into(), Json::Num(trace)),
        ("ledger_derive_secs".into(), Json::Num(derive_secs)),
        ("jsonl_serialize_secs".into(), Json::Num(serialize_secs)),
        (
            "overhead_instrumentation".into(),
            Json::Num(overhead_instrumentation),
        ),
        ("overhead_trace".into(), Json::Num(overhead_trace)),
        ("events_per_sec".into(), Json::Num(events_per_sec)),
        ("phases".into(), phases),
    ]);
    if let Err(e) = std::fs::write(&args.out, doc.to_string_pretty() + "\n") {
        eprintln!("bench_obs: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);

    if let Some(max) = args.max_overhead {
        if overhead_instrumentation > max {
            eprintln!(
                "bench_obs: instrumentation overhead {overhead_instrumentation:.3}x exceeds --max-overhead {max}"
            );
            std::process::exit(1);
        }
        println!("overhead {overhead_instrumentation:.3}x within --max-overhead {max}");
    }
}

//! Minimal `Instant`-based timing harness with a criterion-shaped API.
//!
//! The no-network build cannot pull criterion from the registry, so the
//! bench targets run on this shim instead. It keeps the subset of the
//! criterion surface the benches use — [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], [`black_box`] and
//! the `criterion_group!`/`criterion_main!` macros — so a future return
//! to criterion is a one-line import change per bench file.
//!
//! Methodology: one warm-up call, then the iteration count is doubled
//! until a batch takes ≥ 2 ms (so `Instant` granularity is noise), then
//! `sample_size` batches are timed and the per-iteration median and
//! minimum are reported. Set `MCS_BENCH_FAST=1` to run each bench exactly
//! once (smoke mode for CI).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration for one calibrated batch of iterations.
const BATCH_TARGET: Duration = Duration::from_millis(2);

/// Top-level harness state: sample count and an optional name filter
/// taken from the command line (`cargo bench -p mcs-bench -- <filter>`).
pub struct Criterion {
    samples: usize,
    filter: Option<String>,
    fast: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            samples: 15,
            filter,
            fast: std::env::var_os("MCS_BENCH_FAST").is_some(),
        }
    }
}

impl Criterion {
    /// Sets the default number of timed batches per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Opens a named group; benches inside print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            samples: None,
            throughput: None,
        }
    }

    /// Times a single free-standing benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let samples = self.samples;
        self.run(name, samples, None, f);
    }

    /// Prints the closing line. (Criterion compatibility; summary only.)
    pub fn finish(&self) {}

    fn run(
        &mut self,
        name: &str,
        samples: usize,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: if self.fast { 1 } else { samples },
            fast: self.fast,
            result: None,
        };
        f(&mut b);
        let Some(m) = b.result else {
            println!("{name:<44} (no measurement: bencher.iter never called)");
            return;
        };
        let mut line = format!(
            "{name:<44} median {:>10}  min {:>10}  ({} x {} iters)",
            fmt_time(m.median),
            fmt_time(m.min),
            b.samples,
            m.iters,
        );
        if let Some(Throughput::Elements(n)) = throughput {
            if m.median > 0.0 {
                let rate = n as f64 / m.median;
                line.push_str(&format!("  {:.2} Melem/s", rate / 1e6));
            }
        }
        println!("{line}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    samples: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(1));
        self
    }

    /// Declares the work per iteration, reported as elements/second.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `group/name`.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{name}", self.name);
        let samples = self.samples.unwrap_or(self.c.samples);
        let throughput = self.throughput;
        self.c.run(&full, samples, throughput, f);
    }

    /// Times `group/id` with a borrowed input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.0);
        let samples = self.samples.unwrap_or(self.c.samples);
        let throughput = self.throughput;
        self.c.run(&full, samples, throughput, |b| f(b, input));
    }

    /// Ends the group. (Criterion compatibility; nothing to flush.)
    pub fn finish(self) {}
}

/// A benchmark identifier, rendered into the printed name.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter` style id.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing summary, in seconds.
#[derive(Debug, Clone, Copy)]
struct Sample {
    median: f64,
    min: f64,
    iters: u64,
}

/// Hands the closure to time to the measurement loop.
pub struct Bencher {
    samples: usize,
    fast: bool,
    result: Option<Sample>,
}

impl Bencher {
    /// Times `f`, storing the per-iteration median/min over all batches.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.fast {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed().as_secs_f64();
            self.result = Some(Sample {
                median: dt,
                min: dt,
                iters: 1,
            });
            return;
        }
        black_box(f()); // warm-up
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            if start.elapsed() >= BATCH_TARGET || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        self.result = Some(Sample {
            median: per_iter[per_iter.len() / 2],
            min: per_iter[0],
            iters,
        });
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Builds the `fn benches()` entry point, criterion style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
            c.finish();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Builds `fn main()` from a `criterion_group!` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($name:ident) => {
        fn main() {
            $name();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: 3,
            fast: true,
            result: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        let m = b.result.expect("measured");
        assert!(m.median >= 0.0);
        assert_eq!(m.iters, 1);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(2.5e-9).ends_with("ns"));
        assert!(fmt_time(3.1e-6).ends_with("µs"));
        assert!(fmt_time(4.2e-3).ends_with("ms"));
        assert!(fmt_time(1.5).ends_with('s'));
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("quadratic", 1000).0, "quadratic/1000");
        assert_eq!(BenchmarkId::from_parameter(50).0, "50");
    }
}

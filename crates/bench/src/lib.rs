//! Shared workload builders for the benchmark harness.

#![warn(missing_docs)]

pub mod harness;

use mcs_model::request::SingleItemTrace;
use mcs_model::{CostModel, RequestSeq};
use mcs_trace::workload::{generate, WorkloadConfig};

/// Deterministic benchmark seed.
pub const BENCH_SEED: u64 = 0xD9_65;

/// A paper-like workload scaled to roughly `steps` simulation steps.
pub fn bench_workload(steps: usize) -> RequestSeq {
    let mut cfg = WorkloadConfig::paper_like(BENCH_SEED);
    cfg.steps = steps;
    generate(&cfg)
}

/// A single-item trace with `n` points over `m` servers, round-robin-ish
/// placement with deterministic jitter (no RNG: benches must be stable).
pub fn bench_trace(n: usize, m: u32) -> SingleItemTrace {
    let pairs: Vec<(f64, u32)> = (1..=n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (i as f64 * 0.37, ((h >> 33) % m as u64) as u32)
        })
        .collect();
    SingleItemTrace::from_pairs(m, &pairs)
}

/// The benchmark cost model — the workspace defaults (`μ = 2`, `λ = 4`,
/// `α = 0.8`; the Fig.-12 peak mix ρ = 2).
pub fn bench_model() -> CostModel {
    mcs_model::defaults::default_model()
}

/// A paper-like workload with both the step count and the catalog size
/// (`taxis` = items `k`) scaled — the input of the `bench_perf` scaling
/// sweeps, where Phase 1's pair table grows with `k²` and Phase 2's
/// work-unit count grows with `k`.
pub fn perf_workload(steps: usize, taxis: usize) -> RequestSeq {
    let mut cfg = WorkloadConfig::paper_like(BENCH_SEED);
    cfg.steps = steps;
    cfg.taxis = taxis;
    // `paper_like` correlates only its original ten taxis; cycle the same
    // affinity spread across the whole fleet so the perf workload keeps
    // the paper's correlated co-access shape as `taxis` scales, instead
    // of degenerating into mostly-independent singleton requests that
    // give Phase 1 nothing to measure.
    cfg.pair_affinity = (0..taxis / 2)
        .map(|p| cfg.pair_affinity[p % cfg.pair_affinity.len()])
        .collect();
    generate(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_deterministic_and_sized() {
        assert_eq!(bench_workload(200), bench_workload(200));
        let t = bench_trace(100, 5);
        assert_eq!(t.len(), 100);
        assert_eq!(t.servers, 5);
        let t2 = bench_trace(100, 5);
        assert_eq!(t.points, t2.points);
    }
}

//! On-line vs off-line: the extension experiment (E10).
//!
//! Serves each taxi item's trace with the ski-rental on-line policy and
//! the two trivial extremes, comparing against the off-line optimum the
//! DP substrate computes — the "online vs. off-line" question of the
//! paper's reference [6].
//!
//! ```text
//! cargo run --release --example online_vs_offline
//! ```

use dp_greedy_suite::online::extremes::{always_transfer, cache_everywhere};
use dp_greedy_suite::online::harness::competitive_ratio;
use dp_greedy_suite::online::ski_rental::ski_rental;
use dp_greedy_suite::prelude::*;

fn main() {
    let mut config = WorkloadConfig::paper_like(7);
    config.steps = 1500;
    let seq = generate(&config);
    let model = CostModel::new(3.0, 3.0, 0.8).expect("valid model");

    println!(
        "{:<6} {:>5} {:>12} {:>12} {:>12} {:>12}",
        "item", "n", "offline", "ski-rental", "always-tx", "cache-all"
    );
    let mut worst: f64 = 0.0;
    for i in 0..seq.items() {
        let trace = seq.item_trace(ItemId(i));
        let sr = competitive_ratio(&trace, &model, ski_rental);
        let at = competitive_ratio(&trace, &model, always_transfer);
        let ce = competitive_ratio(&trace, &model, cache_everywhere);
        worst = worst.max(sr.ratio);
        println!(
            "d{:<5} {:>5} {:>12.2} {:>11.3}x {:>11.3}x {:>11.3}x",
            i + 1,
            trace.len(),
            sr.offline,
            sr.ratio,
            at.ratio,
            ce.ratio
        );
    }
    println!("\nworst ski-rental competitive ratio: {worst:.3} (3-competitive family, per [6])");
}

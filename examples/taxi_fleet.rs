//! Taxi fleet scenario: the paper's evaluation workload end to end.
//!
//! Generates the synthetic Shenzhen-like city (50 zones, 10 taxis, one
//! data item per taxi), inspects its spatial and correlation statistics
//! (the Figs. 9/10 artefacts), then compares DP_Greedy against the
//! non-packing Optimal, the all-greedy baseline, and Package_Served.
//!
//! ```text
//! cargo run --release --example taxi_fleet
//! ```

use dp_greedy_suite::prelude::*;
use dp_greedy_suite::trace::stats::{pair_spectrum, TraceStats};

fn main() {
    let config = WorkloadConfig::paper_like(20190923);
    let seq = generate(&config);

    let stats = TraceStats::from_sequence(&seq);
    println!(
        "workload: {} requests, {} item accesses over {} zones (horizon t={:.1})",
        stats.requests,
        stats.item_accesses,
        seq.servers(),
        stats.horizon
    );
    println!(
        "spatial skew: top-10 zones hold {:.1}% of requests (uniform would be 20%)",
        100.0 * stats.top_zone_share(10)
    );

    println!("\ntop item pairs by Jaccard similarity:");
    for row in pair_spectrum(&seq).iter().take(6) {
        println!(
            "  ({}, {})  frequency = {:<5} J = {:.4}",
            row.a, row.b, row.frequency, row.jaccard
        );
    }

    // The paper's parameters: θ = 0.3, α = 0.8; rates at the ρ = 2 mix.
    let model = CostModel::new(2.0, 4.0, 0.8).expect("valid model");
    let config = DpGreedyConfig::new(model).with_theta(0.3);

    let dpg = dp_greedy(&seq, &config);
    let opt = optimal_non_packing(&seq, &model);
    let grd = greedy_non_packing(&seq, &model);
    let pkg = package_served(&seq, &model, 0.3);

    println!("\npacked pairs (J > 0.3): {:?}", dpg.packing.pairs);
    println!("\n{:<16} {:>12} {:>10}", "algorithm", "total", "ave_cost");
    for (name, total, ave) in [
        ("DP_Greedy", dpg.total_cost, dpg.ave_cost()),
        ("Optimal", opt.total_cost, opt.ave_cost()),
        ("Greedy", grd.total_cost, grd.ave_cost()),
        ("Package_Served", pkg.total_cost, pkg.ave_cost()),
    ] {
        println!("{name:<16} {total:>12.2} {ave:>10.4}");
    }
    println!(
        "\nDP_Greedy vs Optimal: {:.2}% cost reduction",
        100.0 * (1.0 - dpg.total_cost / opt.total_cost)
    );

    // Per-pair detail: where does the win come from?
    println!("\nper-pair breakdown (DP_Greedy):");
    for p in &dpg.pairs {
        println!(
            "  ({}, {}) J = {:.3}: package {:.1} + greedy {:.1}/{:.1} over {} accesses → ave {:.4}",
            p.a,
            p.b,
            p.jaccard,
            p.package_cost,
            p.a_singleton_cost,
            p.b_singleton_cost,
            p.accesses,
            p.ave_cost()
        );
    }
}

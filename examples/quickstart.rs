//! Quickstart: run DP_Greedy on the paper's running example (Section V-C)
//! and reproduce its numbers end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dp_greedy_suite::prelude::*;

fn main() {
    // The running example: two data items over four servers, three
    // co-requests (packages) and four singleton requests.
    let seq = RequestSeqBuilder::new(4, 2)
        .push(1u32, 0.5, [0]) // d1 @ s2
        .push(2u32, 0.8, [0, 1]) // package @ s3
        .push(3u32, 1.1, [1]) // d2 @ s4
        .push(0u32, 1.4, [0, 1]) // package @ s1
        .push(1u32, 2.6, [0]) // d1 @ s2
        .push(1u32, 3.2, [1]) // d2 @ s2
        .push(2u32, 4.0, [0, 1]) // package @ s3
        .build()
        .expect("valid sequence");

    // μ = λ = 1, α = 0.8, θ = 0.4 — the Section V-C parameters.
    let model = CostModel::new(1.0, 1.0, 0.8).expect("valid model");
    let config = DpGreedyConfig::new(model).with_theta(0.4);

    let report = dp_greedy(&seq, &config);

    println!("Phase 1 packing: {:?}", report.packing.pairs);
    let pair = &report.pairs[0];
    println!("J(d1, d2)      = {:.4} (paper: 3/7 ≈ 0.4286)", pair.jaccard);
    println!("C_12 (package) = {:.4} (paper: 8.96)", pair.package_cost);
    println!("C_1' (greedy)  = {:.4} (paper: 3.1)", pair.a_singleton_cost);
    println!("C_2' (greedy)  = {:.4} (paper: 2.9)", pair.b_singleton_cost);
    println!("total          = {:.4} (paper: 14.96)", report.total_cost);
    println!("ave_cost       = {:.4}", report.ave_cost());

    // Compare against the non-packing Optimal yardstick.
    let opt = optimal_non_packing(&seq, &model);
    println!(
        "\nOptimal (non-packing) total = {:.4}; DP_Greedy saves {:.1}%",
        opt.total_cost,
        100.0 * (1.0 - report.total_cost / opt.total_cost)
    );

    // Render the package schedule as a space-time diagram (Fig. 7 style).
    let co_trace = seq.package_trace(ItemId(0), ItemId(1));
    println!("\nPackage schedule (space-time):");
    println!(
        "{}",
        dp_greedy_suite::model::diagram::render(&pair.package_schedule, &co_trace, 60)
    );

    // Independently re-verify the package schedule in the replay simulator.
    let rep = replay(&pair.package_schedule, &co_trace).expect("feasible schedule");
    let pkg_model = model.scaled_for_package();
    println!(
        "replayed package cost = {:.4} (matches C_12)",
        rep.cost(pkg_model.mu(), pkg_model.lambda())
    );
}

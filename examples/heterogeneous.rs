//! Heterogeneous costs — why the general problem is hard.
//!
//! The paper proves its `2/α` guarantee under homogeneous costs and notes
//! the general (heterogeneous) form is believed NP-complete. This example
//! shows the structural difference on a tiny network: with per-server
//! caching rates, *pre-positioning* a copy at a cheap "parking" server
//! becomes optimal — a move no homogeneous-style greedy ever considers.
//!
//! ```text
//! cargo run --example heterogeneous
//! ```

use dp_greedy_suite::model::request::SingleItemTrace;
use dp_greedy_suite::model::{CostModel, HeteroCostModel};
use dp_greedy_suite::offline::hetero::{hetero_exact, hetero_greedy};
use dp_greedy_suite::offline::optimal;

fn main() {
    // Three servers; s3 is a cold-storage zone with a tiny caching rate.
    let hetero = HeteroCostModel::new(
        vec![10.0, 10.0, 0.01],
        vec![
            0.0, 1.0, 1.0, //
            1.0, 0.0, 1.0, //
            1.0, 1.0, 0.0,
        ],
        0.8,
    )
    .expect("valid model");
    println!("metric transfer matrix: {}", hetero.is_metric());

    // Requests alternating between the two expensive servers.
    let trace = SingleItemTrace::from_pairs(3, &[(5.0, 0), (10.0, 1), (15.0, 0)]);

    let exact = hetero_exact(&trace, &hetero).expect("model sized for the trace");
    let greedy = hetero_greedy(&trace, &hetero).expect("model sized for the trace");
    println!("\nheterogeneous network (s3 caches at 0.01/unit):");
    println!("  exact optimum        = {exact:.2}   (parks the copy at s3)");
    println!(
        "  greedy (Fig. 4 rule) = {greedy:.2}   (never parks; {:.1}x worse)",
        greedy / exact
    );

    // The same layout under homogeneous costs: parking buys nothing, and
    // the paper's guarantees apply.
    let homo = CostModel::new(10.0, 1.0, 0.8).expect("valid");
    let homo_exact = optimal(&trace, &homo).cost;
    let uniform = HeteroCostModel::uniform(3, 10.0, 1.0, 0.8).expect("valid");
    let uniform_exact = hetero_exact(&trace, &uniform).expect("model sized for the trace");
    println!("\nuniform control (every server caches at 10/unit):");
    println!("  homogeneous optimal DP = {homo_exact:.2}");
    println!(
        "  heterogeneous solver   = {uniform_exact:.2}  (identical — pre-positioning is dominated)"
    );
    assert!((homo_exact - uniform_exact).abs() < 1e-9);
}

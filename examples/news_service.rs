//! News-service scenario — the correlation example from the paper's
//! introduction: "accessing the news text always implies accessing its
//! associated pictures and video clips in the subsequent time".
//!
//! Models a mobile news CDN: item 0 is the article text, items 1–2 its
//! picture and video (almost always co-accessed), items 3–4 unrelated
//! stories. Shows Phase 1 discovering the bundle, the pairwise packing of
//! Algorithm 1, and the multi-item grouping extension the paper sketches
//! as future work.
//!
//! ```text
//! cargo run --example news_service
//! ```

use dp_greedy_suite::correlation::grouping::agglomerative_grouping;
use dp_greedy_suite::prelude::*;

fn main() {
    // Readers on 6 edge servers over one news cycle. The article bundle
    // (d1 = text, d2 = picture, d3 = video) is co-accessed; d4/d5 are
    // independent stories.
    let mut b = RequestSeqBuilder::new(6, 5);
    let mut t = 0.0;
    // Morning surge: the bundle is read together across the edge.
    for (i, &srv) in [1u32, 2, 3, 1, 4, 2, 5, 3, 1, 2].iter().enumerate() {
        t += 0.3;
        if i % 3 == 2 {
            b = b.push(srv, t, [0, 1]); // text + picture
        } else {
            b = b.push(srv, t, [0, 1, 2]); // full bundle
        }
    }
    // Sparse standalone accesses.
    for &(srv, items) in &[(4u32, 3u32), (5, 4), (4, 3), (2, 4), (4, 3)] {
        t += 0.7;
        b = b.push(srv, t, [items]);
    }
    let seq = b.build().expect("valid sequence");

    // Phase 1 on its own: what does the Jaccard analysis see?
    let matrix = JaccardMatrix::from_sequence(&seq);
    println!("Jaccard matrix (bundle items should stand out):");
    for i in 0..5u32 {
        let row: Vec<String> = (0..5u32)
            .map(|j| format!("{:.2}", matrix.get(ItemId(i), ItemId(j))))
            .collect();
        println!("  d{}: [{}]", i + 1, row.join(", "));
    }

    let packing = greedy_matching(&matrix, 0.3);
    println!(
        "\nAlgorithm 1 pairwise packing (θ = 0.3): {:?}",
        packing.pairs
    );

    // The future-work extension: full bundle grouping.
    let packages = agglomerative_grouping(&matrix, 0.3, usize::MAX);
    println!(
        "multi-item grouping extension: packages {:?}, singletons {:?}",
        packages.packages, packages.singletons
    );

    // Cost comparison on the pairwise algorithm.
    let model = CostModel::new(1.0, 2.0, 0.7).expect("valid model");
    let config = DpGreedyConfig::new(model).with_theta(0.3);
    let dpg = dp_greedy(&seq, &config);
    let opt = optimal_non_packing(&seq, &model);
    println!(
        "\nDP_Greedy ave_cost = {:.4} vs Optimal (non-packing) {:.4} ({:+.1}%)",
        dpg.ave_cost(),
        opt.ave_cost(),
        100.0 * (dpg.ave_cost() / opt.ave_cost() - 1.0)
    );

    for p in &dpg.pairs {
        println!(
            "packed ({}, {}): J = {:.3}, package arm won {} of {} singleton servings",
            p.a,
            p.b,
            p.jaccard,
            p.a_greedy.arm_counts[2] + p.b_greedy.arm_counts[2],
            p.a_greedy.choices.len() + p.b_greedy.choices.len(),
        );
    }
}

//! Adaptive packing under correlation drift — the windowed off-line
//! variant and the decayed on-line variant side by side.
//!
//! Workload: item d1 co-occurs with d2 for the first half of the trace and
//! with d3 for the second. A single whole-trace Phase 1 (the paper's
//! algorithm) can only pack d1 with one partner; both adaptive variants
//! re-learn the packing and serve both phases well.
//!
//! ```text
//! cargo run --release --example adaptive_packing
//! ```

use dp_greedy_suite::dp_greedy::windowed::{dp_greedy_windowed, WindowedConfig};
use dp_greedy_suite::experiments::drift_exp::drift_workload;
use dp_greedy_suite::online::online_dpg::{online_dp_greedy, OnlineDpgConfig};
use dp_greedy_suite::prelude::*;

fn main() {
    let (seq, boundary) = drift_workload(800, true, 2026);
    println!(
        "drifting workload: {} requests, phase boundary at t={boundary:.1}",
        seq.len()
    );

    let model = CostModel::new(2.0, 4.0, 0.4).expect("valid model");
    let config = DpGreedyConfig::new(model).with_theta(0.3);

    // The paper's algorithm: one global packing.
    let global = dp_greedy(&seq, &config);
    println!("\nglobal DP_Greedy packs {:?}", global.packing.pairs);
    println!("  ave_cost = {:.4}", global.ave_cost());

    // Windowed off-line variant: re-pack per phase.
    let windowed = dp_greedy_windowed(
        &seq,
        &WindowedConfig {
            inner: config,
            window: boundary,
        },
    );
    println!("\nwindowed DP_Greedy ({} windows):", windowed.windows.len());
    for w in &windowed.windows {
        println!(
            "  [{:>6.1}, {:>6.1})  pairs {:?}  cost {:.1}",
            w.start, w.end, w.pairs, w.cost
        );
    }
    println!(
        "  ave_cost = {:.4}  (adapted: {})",
        windowed.ave_cost(),
        windowed.adapted()
    );

    // On-line variant: streaming decayed correlation, no oracle at all.
    let online = online_dp_greedy(&seq, &OnlineDpgConfig::new(model).with_decay(0.95));
    println!(
        "\non-line DP_Greedy (decay 0.95): cost {:.1}, {} package transfers, {} repackings",
        online.cost, online.package_transfers, online.repackings
    );

    let opt = optimal_non_packing(&seq, &model);
    println!(
        "\nreference: non-packing Optimal ave_cost = {:.4}",
        opt.ave_cost()
    );
    println!(
        "\nsummary: windowed saves {:.1}% over global; both beat the non-packing optimum.",
        100.0 * (1.0 - windowed.total_cost / global.total_cost)
    );
}

//! `dpg` — command-line front end for the DP_Greedy reproduction.
//!
//! ```text
//! dpg generate --out trace.json [--seed N] [--steps N] [--taxis N]
//! dpg stats trace.json
//! dpg solve trace.json [--algo dpg|optimal|greedy|package|multi]
//!                      [--mu X] [--lambda X] [--alpha X] [--theta X]
//! dpg example
//! ```
//!
//! Traces are the JSON format of `mcs_trace::io` (generated here or
//! imported from elsewhere).

use std::process::ExitCode;

use dp_greedy_suite::dp_greedy::multi_item::{dp_greedy_multi, MultiItemConfig};
use dp_greedy_suite::prelude::*;
use dp_greedy_suite::trace::io::TraceFile;
use dp_greedy_suite::trace::stats::{pair_spectrum, TraceStats};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dpg generate --out FILE [--seed N] [--steps N] [--taxis N]\n  \
         dpg stats FILE\n  \
         dpg solve FILE [--algo dpg|optimal|greedy|package|multi] \
         [--mu X] [--lambda X] [--alpha X] [--theta X]\n  \
         dpg svg FILE --out FILE.svg [--item N] [--mu X] [--lambda X]\n  \
         dpg explain FILE [--a N --b N] [--mu X] [--lambda X] [--alpha X]\n  \
         dpg example"
    );
    ExitCode::from(2)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<Result<T, String>> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<T>()
            .map_err(|_| format!("bad value for {flag}"))
    })
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let out: String = parse_flag(args, "--out").ok_or("--out FILE is required")??;
    let seed: u64 = parse_flag(args, "--seed").transpose()?.unwrap_or(20190923);
    let mut cfg = WorkloadConfig::paper_like(seed);
    if let Some(steps) = parse_flag(args, "--steps").transpose()? {
        cfg.steps = steps;
    }
    if let Some(taxis) = parse_flag::<usize>(args, "--taxis").transpose()? {
        cfg.taxis = taxis;
        // Spread affinities over the new pair count.
        let pairs = taxis / 2;
        cfg.pair_affinity = (0..pairs)
            .map(|p| 0.95 - 0.9 * p as f64 / pairs.max(1) as f64)
            .collect();
    }
    let seq = generate(&cfg);
    println!(
        "generated {} requests ({} item accesses) over {} zones",
        seq.len(),
        seq.total_item_accesses(),
        seq.servers()
    );
    TraceFile::synthetic(cfg, seq)
        .save(&out)
        .map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats needs a trace file")?;
    let file = TraceFile::load(path).map_err(|e| e.to_string())?;
    let seq = &file.sequence;
    let st = TraceStats::from_sequence(seq);
    println!(
        "{} requests, {} item accesses, {} servers, {} items, horizon t={:.2}",
        st.requests,
        st.item_accesses,
        seq.servers(),
        seq.items(),
        st.horizon
    );
    if let Some((zone, count)) = st.hottest_zone() {
        println!(
            "hottest zone: {zone} with {count} requests; top-10 share {:.1}%",
            100.0 * st.top_zone_share(10)
        );
    }
    println!("\ntop pairs by Jaccard:");
    for row in pair_spectrum(seq).iter().take(8) {
        println!(
            "  ({}, {})  freq={:<6} J={:.4}",
            row.a, row.b, row.frequency, row.jaccard
        );
    }
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("solve needs a trace file")?;
    let file = TraceFile::load(path).map_err(|e| e.to_string())?;
    let seq = &file.sequence;

    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(2.0);
    let lambda: f64 = parse_flag(args, "--lambda").transpose()?.unwrap_or(4.0);
    let alpha: f64 = parse_flag(args, "--alpha").transpose()?.unwrap_or(0.8);
    let theta: f64 = parse_flag(args, "--theta").transpose()?.unwrap_or(0.3);
    let algo: String = parse_flag(args, "--algo")
        .transpose()?
        .unwrap_or_else(|| "dpg".to_string());
    let model = CostModel::new(mu, lambda, alpha).map_err(|e| e.to_string())?;

    println!(
        "μ={mu} λ={lambda} α={alpha} θ={theta}  ({} requests)",
        seq.len()
    );
    match algo.as_str() {
        "dpg" => {
            let r = dp_greedy(seq, &DpGreedyConfig::new(model).with_theta(theta));
            println!("packed pairs: {:?}", r.packing.pairs);
            for p in &r.pairs {
                println!(
                    "  ({}, {}) J={:.3}: C12={:.2} C1'={:.2} C2'={:.2} (ave {:.4})",
                    p.a,
                    p.b,
                    p.jaccard,
                    p.package_cost,
                    p.a_singleton_cost,
                    p.b_singleton_cost,
                    p.ave_cost()
                );
            }
            println!(
                "DP_Greedy total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "optimal" => {
            let r = optimal_non_packing(seq, &model);
            println!(
                "Optimal total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "greedy" => {
            let r = greedy_non_packing(seq, &model);
            println!(
                "Greedy total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "package" => {
            let r = package_served(seq, &model, theta);
            println!(
                "Package_Served total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "multi" => {
            let r = dp_greedy_multi(seq, &MultiItemConfig::new(model).with_theta(theta));
            for g in &r.groups {
                let items: Vec<String> = g.items.iter().map(|d| d.to_string()).collect();
                println!(
                    "  group [{}]: package={:.2} partial={:.2} ({} group deliveries)",
                    items.join(", "),
                    g.package_cost,
                    g.partial_cost,
                    g.group_deliveries
                );
            }
            println!(
                "Multi-item DP_Greedy total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        other => return Err(format!("unknown algorithm {other}")),
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("explain needs a trace file")?;
    let a: u32 = parse_flag(args, "--a").transpose()?.unwrap_or(0);
    let b: u32 = parse_flag(args, "--b").transpose()?.unwrap_or(1);
    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(2.0);
    let lambda: f64 = parse_flag(args, "--lambda").transpose()?.unwrap_or(4.0);
    let alpha: f64 = parse_flag(args, "--alpha").transpose()?.unwrap_or(0.8);

    let file = TraceFile::load(path).map_err(|e| e.to_string())?;
    let model = CostModel::new(mu, lambda, alpha).map_err(|e| e.to_string())?;
    let config = DpGreedyConfig::new(model);
    print!(
        "{}",
        dp_greedy_suite::dp_greedy::explain::explain_pair_text(
            &file.sequence,
            ItemId(a),
            ItemId(b),
            &config
        )
    );
    Ok(())
}

fn cmd_svg(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("svg needs a trace file")?;
    let out: String = parse_flag(args, "--out").ok_or("--out FILE is required")??;
    let item: u32 = parse_flag(args, "--item").transpose()?.unwrap_or(0);
    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(2.0);
    let lambda: f64 = parse_flag(args, "--lambda").transpose()?.unwrap_or(4.0);

    let file = TraceFile::load(path).map_err(|e| e.to_string())?;
    let model = CostModel::new(mu, lambda, 0.8).map_err(|e| e.to_string())?;
    let trace = file.sequence.item_trace(ItemId(item));
    if trace.is_empty() {
        return Err(format!("item d{} has no requests in this trace", item + 1));
    }
    let solved = optimal(&trace, &model);
    let svg = dp_greedy_suite::model::svg::render_svg(
        &solved.schedule,
        &trace,
        &dp_greedy_suite::model::svg::SvgOptions::default(),
    );
    std::fs::write(&out, svg).map_err(|e| e.to_string())?;
    println!(
        "wrote {out} (optimal schedule for d{}, cost {:.2}, {} requests)",
        item + 1,
        solved.cost,
        trace.len()
    );
    Ok(())
}

fn cmd_example() -> Result<(), String> {
    let report = dp_greedy_suite::dp_greedy::paper_example::paper_report();
    let pair = &report.pairs[0];
    println!("Section V-C running example (μ=λ=1, α=0.8, θ=0.4):");
    println!("  J(d1,d2) = {:.4}", pair.jaccard);
    println!(
        "  C12 = {:.2}, C1' = {:.2}, C2' = {:.2}",
        pair.package_cost, pair.a_singleton_cost, pair.b_singleton_cost
    );
    println!("  total = {:.2} (paper: 14.96)", report.total_cost);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "solve" => cmd_solve(rest),
        "svg" => cmd_svg(rest),
        "explain" => cmd_explain(rest),
        "example" => cmd_example(),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

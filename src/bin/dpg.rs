//! `dpg` — command-line front end for the DP_Greedy reproduction.
//!
//! ```text
//! dpg generate --out trace.json [--seed N] [--steps N] [--taxis N]
//! dpg stats trace.json
//! dpg solve trace.json [--algo dpg|optimal|greedy|package|multi]
//!                      [--mu X] [--lambda X] [--alpha X] [--theta X]
//! dpg trace solve trace.json --out events.jsonl [--algo dpg|optimal|greedy] [...]
//! dpg trace example --out events.jsonl
//! dpg chaos [--seed N] [--fault-rate X] [--sweep]
//! dpg example
//! dpg version
//! ```
//!
//! Traces are the JSON format of `mcs_trace::io` (generated here or
//! imported from elsewhere).
//!
//! Every subcommand additionally accepts `--metrics`, which prints the
//! `mcs-obs` counter/span summary (phase timings and work counters) after
//! the command completes. `dpg trace` derives the decision ledger of a
//! run — one JSON-lines event per cache interval, transfer, and
//! package-delivery choice — verifies it reconciles with the reported
//! total cost, and writes it to `--out` (byte-deterministic for a given
//! input; see the README's "Observability" section for the schema).
//!
//! Exit codes follow the usual convention: `0` on success, `1` on a
//! runtime failure (unreadable trace, I/O error, ledger mismatch), `2` on
//! a usage error (unknown command, unknown or malformed flag, missing
//! argument).

use std::process::ExitCode;

use dp_greedy_suite::dp_greedy::multi_item::{dp_greedy_multi, MultiItemConfig};
use dp_greedy_suite::prelude::*;
use dp_greedy_suite::trace::io::TraceFile;
use dp_greedy_suite::trace::stats::{pair_spectrum, TraceStats};

/// A CLI failure, split by whose fault it is: [`CliError::Usage`] means
/// the invocation itself was malformed (exit 2), [`CliError::Runtime`]
/// means a well-formed invocation failed while running (exit 1).
enum CliError {
    Usage(String),
    Runtime(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.to_string())
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  dpg generate --out FILE [--seed N] [--steps N] [--taxis N]\n  \
         dpg stats FILE\n  \
         dpg solve FILE [--algo dpg|optimal|greedy|package|multi] \
         [--mu X] [--lambda X] [--alpha X] [--theta X]\n  \
         dpg svg FILE --out FILE.svg [--item N] [--mu X] [--lambda X]\n  \
         dpg explain FILE [--a N --b N] [--mu X] [--lambda X] [--alpha X]\n  \
         dpg trace solve FILE --out FILE.jsonl [--algo dpg|optimal|greedy] \
         [--mu X] [--lambda X] [--alpha X] [--theta X]\n  \
         dpg trace example --out FILE.jsonl\n  \
         dpg chaos [--seed N] [--fault-rate X] [--mean-outage X] [--steps N] \
         [--mu X] [--lambda X] [--alpha X] [--theta X] [--sweep]\n  \
         dpg example\n  \
         dpg version\n\
         every subcommand also accepts --metrics (print the obs summary)"
    );
}

/// Rejects flags the subcommand does not know. `value_flags` consume the
/// following token; `bool_flags` stand alone. Positional arguments are
/// ignored.
fn check_flags(
    cmd: &str,
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<(), CliError> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            if value_flags.contains(&a) {
                i += 2;
                continue;
            }
            if bool_flags.contains(&a) {
                i += 1;
                continue;
            }
            return Err(CliError::Usage(format!("unknown flag {a} for `dpg {cmd}`")));
        }
        i += 1;
    }
    Ok(())
}

/// First positional argument (the trace file). Usage error if absent or
/// if a flag landed where the file was expected.
fn trace_arg<'a>(cmd: &str, args: &'a [String]) -> Result<&'a String, CliError> {
    match args.first() {
        Some(a) if !a.starts_with("--") => Ok(a),
        _ => Err(CliError::Usage(format!("{cmd} needs a trace file"))),
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<Result<T, CliError>> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?
            .parse::<T>()
            .map_err(|_| CliError::Usage(format!("bad value for {flag}")))
    })
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "generate",
        args,
        &["--out", "--seed", "--steps", "--taxis"],
        &[],
    )?;
    let out: String = parse_flag(args, "--out").ok_or("--out FILE is required")??;
    let seed: u64 = parse_flag(args, "--seed").transpose()?.unwrap_or(20190923);
    let mut cfg = WorkloadConfig::paper_like(seed);
    if let Some(steps) = parse_flag(args, "--steps").transpose()? {
        cfg.steps = steps;
    }
    if let Some(taxis) = parse_flag::<usize>(args, "--taxis").transpose()? {
        cfg.taxis = taxis;
        // Spread affinities over the new pair count.
        let pairs = taxis / 2;
        cfg.pair_affinity = (0..pairs)
            .map(|p| 0.95 - 0.9 * p as f64 / pairs.max(1) as f64)
            .collect();
    }
    let seq = generate(&cfg);
    println!(
        "generated {} requests ({} item accesses) over {} zones",
        seq.len(),
        seq.total_item_accesses(),
        seq.servers()
    );
    TraceFile::synthetic(cfg, seq)
        .save(&out)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    check_flags("stats", args, &[], &[])?;
    let path = trace_arg("stats", args)?;
    let file = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let seq = &file.sequence;
    let st = TraceStats::from_sequence(seq);
    println!(
        "{} requests, {} item accesses, {} servers, {} items, horizon t={:.2}",
        st.requests,
        st.item_accesses,
        seq.servers(),
        seq.items(),
        st.horizon
    );
    if let Some((zone, count)) = st.hottest_zone() {
        println!(
            "hottest zone: {zone} with {count} requests; top-10 share {:.1}%",
            100.0 * st.top_zone_share(10)
        );
    }
    println!("\ntop pairs by Jaccard:");
    for row in pair_spectrum(seq).iter().take(8) {
        println!(
            "  ({}, {})  freq={:<6} J={:.4}",
            row.a, row.b, row.frequency, row.jaccard
        );
    }
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "solve",
        args,
        &["--algo", "--mu", "--lambda", "--alpha", "--theta"],
        &[],
    )?;
    let path = trace_arg("solve", args)?;
    let file = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let seq = &file.sequence;

    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(2.0);
    let lambda: f64 = parse_flag(args, "--lambda").transpose()?.unwrap_or(4.0);
    let alpha: f64 = parse_flag(args, "--alpha").transpose()?.unwrap_or(0.8);
    let theta: f64 = parse_flag(args, "--theta").transpose()?.unwrap_or(0.3);
    let algo: String = parse_flag(args, "--algo")
        .transpose()?
        .unwrap_or_else(|| "dpg".to_string());
    let model = CostModel::new(mu, lambda, alpha).map_err(|e| CliError::Usage(e.to_string()))?;

    println!(
        "μ={mu} λ={lambda} α={alpha} θ={theta}  ({} requests)",
        seq.len()
    );
    match algo.as_str() {
        "dpg" => {
            let r = dp_greedy(seq, &DpGreedyConfig::new(model).with_theta(theta));
            println!("packed pairs: {:?}", r.packing.pairs);
            for p in &r.pairs {
                println!(
                    "  ({}, {}) J={:.3}: C12={:.2} C1'={:.2} C2'={:.2} (ave {:.4})",
                    p.a,
                    p.b,
                    p.jaccard,
                    p.package_cost,
                    p.a_singleton_cost,
                    p.b_singleton_cost,
                    p.ave_cost()
                );
            }
            println!(
                "DP_Greedy total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "optimal" => {
            let r = optimal_non_packing(seq, &model);
            println!(
                "Optimal total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "greedy" => {
            let r = greedy_non_packing(seq, &model);
            println!(
                "Greedy total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "package" => {
            let r = package_served(seq, &model, theta);
            println!(
                "Package_Served total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "multi" => {
            let r = dp_greedy_multi(seq, &MultiItemConfig::new(model).with_theta(theta));
            for g in &r.groups {
                let items: Vec<String> = g.items.iter().map(|d| d.to_string()).collect();
                println!(
                    "  group [{}]: package={:.2} partial={:.2} ({} group deliveries)",
                    items.join(", "),
                    g.package_cost,
                    g.partial_cost,
                    g.group_deliveries
                );
            }
            println!(
                "Multi-item DP_Greedy total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        other => return Err(CliError::Usage(format!("unknown algorithm {other}"))),
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "explain",
        args,
        &["--a", "--b", "--mu", "--lambda", "--alpha"],
        &[],
    )?;
    let path = trace_arg("explain", args)?;
    let a: u32 = parse_flag(args, "--a").transpose()?.unwrap_or(0);
    let b: u32 = parse_flag(args, "--b").transpose()?.unwrap_or(1);
    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(2.0);
    let lambda: f64 = parse_flag(args, "--lambda").transpose()?.unwrap_or(4.0);
    let alpha: f64 = parse_flag(args, "--alpha").transpose()?.unwrap_or(0.8);

    let file = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let model = CostModel::new(mu, lambda, alpha).map_err(|e| CliError::Usage(e.to_string()))?;
    let config = DpGreedyConfig::new(model);
    print!(
        "{}",
        dp_greedy_suite::dp_greedy::explain::explain_pair_text(
            &file.sequence,
            ItemId(a),
            ItemId(b),
            &config
        )
    );
    Ok(())
}

fn cmd_svg(args: &[String]) -> Result<(), CliError> {
    check_flags("svg", args, &["--out", "--item", "--mu", "--lambda"], &[])?;
    let path = trace_arg("svg", args)?;
    let out: String = parse_flag(args, "--out").ok_or("--out FILE is required")??;
    let item: u32 = parse_flag(args, "--item").transpose()?.unwrap_or(0);
    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(2.0);
    let lambda: f64 = parse_flag(args, "--lambda").transpose()?.unwrap_or(4.0);

    let file = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let model = CostModel::new(mu, lambda, 0.8).map_err(|e| CliError::Usage(e.to_string()))?;
    let trace = file.sequence.item_trace(ItemId(item));
    if trace.is_empty() {
        return Err(CliError::Runtime(format!(
            "item d{} has no requests in this trace",
            item + 1
        )));
    }
    let solved = optimal(&trace, &model);
    let svg = dp_greedy_suite::model::svg::render_svg(
        &solved.schedule,
        &trace,
        &dp_greedy_suite::model::svg::SvgOptions::default(),
    );
    std::fs::write(&out, svg).map_err(|e| CliError::Runtime(e.to_string()))?;
    println!(
        "wrote {out} (optimal schedule for d{}, cost {:.2}, {} requests)",
        item + 1,
        solved.cost,
        trace.len()
    );
    Ok(())
}

/// `dpg chaos` — fault-injection smoke run over the synthetic workload.
///
/// Plans a DP_Greedy fleet, injects a seeded `FaultPlan`
/// (`mcs_model::fault`), replays every explicit schedule through the
/// degraded engine and reports the degradation ratio plus recovery
/// metrics. Deterministic for a fixed `--seed`. With `--sweep` the full
/// fault-rate × θ × α grid of `mcs_experiments::chaos_exp` is printed
/// instead.
fn cmd_chaos(args: &[String]) -> Result<(), CliError> {
    use dp_greedy_suite::experiments::chaos_exp;
    use dp_greedy_suite::model::fault::FaultPlan;
    use dp_greedy_suite::online::{degradation_ratio, resilient_ski_rental};
    use dp_greedy_suite::sim::chaos_dp_greedy;

    check_flags(
        "chaos",
        args,
        &[
            "--seed",
            "--fault-rate",
            "--mean-outage",
            "--steps",
            "--mu",
            "--lambda",
            "--alpha",
            "--theta",
        ],
        &["--sweep"],
    )?;
    let seed: u64 = parse_flag(args, "--seed").transpose()?.unwrap_or(20190923);
    let fault_rate: f64 = parse_flag(args, "--fault-rate")
        .transpose()?
        .unwrap_or(0.05);
    let mean_outage: f64 = parse_flag(args, "--mean-outage")
        .transpose()?
        .unwrap_or(2.0);
    let steps: usize = parse_flag(args, "--steps").transpose()?.unwrap_or(600);
    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(2.0);
    let lambda: f64 = parse_flag(args, "--lambda").transpose()?.unwrap_or(4.0);
    let alpha: f64 = parse_flag(args, "--alpha").transpose()?.unwrap_or(0.8);
    let theta: f64 = parse_flag(args, "--theta").transpose()?.unwrap_or(0.3);
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(CliError::Usage(format!(
            "--fault-rate must be in [0, 1], got {fault_rate}"
        )));
    }

    let mut cfg = WorkloadConfig::paper_like(seed);
    cfg.steps = steps;

    if args.iter().any(|a| a == "--sweep") {
        let e = chaos_exp::run(&cfg, seed);
        println!("{}", e.table());
        println!("worst degradation ratio: {:.4}", e.worst_ratio());
        return Ok(());
    }

    let seq = generate(&cfg);
    let model = CostModel::new(mu, lambda, alpha).map_err(|e| CliError::Usage(e.to_string()))?;
    let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(theta));
    let plan = FaultPlan::random(
        seed,
        seq.servers(),
        seq.horizon(),
        fault_rate,
        mean_outage,
        fault_rate,
    );
    println!(
        "chaos: seed={seed} fault-rate={fault_rate} mean-outage={mean_outage} \
         μ={mu} λ={lambda} α={alpha} θ={theta}  ({} requests, {} crash windows)",
        seq.len(),
        plan.crashes.len()
    );

    let chaos = chaos_dp_greedy(&seq, &report, &model, &plan);
    println!("fleet (DP_Greedy plan under degraded replay):");
    println!("  fault-free cost     {:.4}", chaos.fault_free_cost);
    println!("  degraded cost       {:.4}", chaos.degraded_cost);
    println!("  degradation ratio   {:.4}", chaos.degradation_ratio);
    println!(
        "  degraded requests   {}/{} ({:.1}%)",
        chaos.fault.requests_degraded,
        chaos.fault.requests_total,
        100.0 * chaos.fault.degraded_fraction()
    );
    println!(
        "  copies lost {}  recaches {}  retries {}  origin fallbacks {}",
        chaos.fault.copies_lost,
        chaos.fault.recaches,
        chaos.fault.retries,
        chaos.fault.origin_fallbacks
    );
    println!(
        "  mean time to repair {:.4} ({} repairs)",
        chaos.fault.mean_time_to_repair, chaos.fault.repairs
    );

    // On-line view: crash-aware ski-rental per item, same plan.
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    let mut measured = 0usize;
    for i in 0..seq.items() {
        let trace = seq.item_trace(ItemId(i));
        if trace.is_empty() {
            continue;
        }
        let s = degradation_ratio(&trace, &model, &plan, resilient_ski_rental);
        worst = worst.max(s.degradation_ratio);
        sum += s.degradation_ratio;
        measured += 1;
    }
    if measured > 0 {
        println!("online (resilient ski-rental per item):");
        println!("  mean degradation    {:.4}", sum / measured as f64);
        println!("  worst degradation   {worst:.4}");
    }
    Ok(())
}

/// `dpg version` / `dpg --version` — crate version plus git-independent
/// build information (everything comes from the Cargo environment, so the
/// output is identical whether or not the source tree is a checkout).
fn cmd_version() -> Result<(), CliError> {
    println!("dpg {}", env!("CARGO_PKG_VERSION"));
    println!(
        "{} — DP_Greedy (CLUSTER 2019) reproduction suite",
        env!("CARGO_PKG_NAME")
    );
    println!("offline build: no external dependencies (see DESIGN.md)");
    Ok(())
}

/// `dpg trace` — derive, verify, and export the decision ledger of a run.
fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    let Some(sub) = args.first() else {
        return Err(CliError::Usage(
            "trace needs a subcommand: solve or example".to_string(),
        ));
    };
    let rest = &args[1..];
    match sub.as_str() {
        "solve" => cmd_trace_solve(rest),
        "example" => cmd_trace_example(rest),
        other => Err(CliError::Usage(format!(
            "unknown trace subcommand {other} (expected solve or example)"
        ))),
    }
}

/// Writes `ledger` to `out` after checking it reconciles with the
/// algorithm's reported total, then prints the cost breakdown.
fn emit_ledger(
    ledger: &dp_greedy_suite::obs::Ledger,
    reported_total: f64,
    algo: &str,
    out: &str,
) -> Result<(), CliError> {
    let derived = ledger.total_cost();
    if (derived - reported_total).abs() > 1e-6 {
        return Err(CliError::Runtime(format!(
            "ledger does not reconcile: Σ event.cost = {derived} but {algo} reported {reported_total}"
        )));
    }
    std::fs::write(out, ledger.to_jsonl_string()).map_err(|e| CliError::Runtime(e.to_string()))?;
    let b = ledger.breakdown();
    println!(
        "wrote {out}: {} events, total {:.4} (reconciles with {algo})",
        ledger.len(),
        derived
    );
    println!(
        "breakdown: cache {:.4} + transfer {:.4} + package_delivery {:.4}",
        b.cache, b.transfer, b.package_delivery
    );
    Ok(())
}

fn cmd_trace_solve(args: &[String]) -> Result<(), CliError> {
    use dp_greedy_suite::dp_greedy::ledger::{dp_greedy_ledger, greedy_ledger, optimal_ledger};

    check_flags(
        "trace solve",
        args,
        &["--algo", "--mu", "--lambda", "--alpha", "--theta", "--out"],
        &[],
    )?;
    let path = trace_arg("trace solve", args)?;
    let out: String = parse_flag(args, "--out").ok_or("--out FILE.jsonl is required")??;
    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(2.0);
    let lambda: f64 = parse_flag(args, "--lambda").transpose()?.unwrap_or(4.0);
    let alpha: f64 = parse_flag(args, "--alpha").transpose()?.unwrap_or(0.8);
    let theta: f64 = parse_flag(args, "--theta").transpose()?.unwrap_or(0.3);
    let algo: String = parse_flag(args, "--algo")
        .transpose()?
        .unwrap_or_else(|| "dpg".to_string());

    let file = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let seq = &file.sequence;
    let model = CostModel::new(mu, lambda, alpha).map_err(|e| CliError::Usage(e.to_string()))?;

    let (ledger, total, name) = match algo.as_str() {
        "dpg" => {
            let r = dp_greedy(seq, &DpGreedyConfig::new(model).with_theta(theta));
            (dp_greedy_ledger(&r, &model), r.total_cost, "DP_Greedy")
        }
        "optimal" => {
            let r = optimal_non_packing(seq, &model);
            (optimal_ledger(seq, &model), r.total_cost, "Optimal")
        }
        "greedy" => {
            let r = greedy_non_packing(seq, &model);
            (greedy_ledger(seq, &model), r.total_cost, "Greedy")
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown algorithm {other} for trace (expected dpg, optimal, or greedy)"
            )))
        }
    };
    emit_ledger(&ledger, total, name, &out)
}

fn cmd_trace_example(args: &[String]) -> Result<(), CliError> {
    use dp_greedy_suite::dp_greedy::ledger::dp_greedy_ledger;
    use dp_greedy_suite::dp_greedy::paper_example::{paper_model, paper_report};

    check_flags("trace example", args, &["--out"], &[])?;
    let out: String = parse_flag(args, "--out").ok_or("--out FILE.jsonl is required")??;
    let report = paper_report();
    let ledger = dp_greedy_ledger(&report, &paper_model());
    emit_ledger(&ledger, report.total_cost, "DP_Greedy", &out)
}

/// Prints the `--metrics` summary: counters, then span/histogram stats,
/// in deterministic name order.
fn print_metrics() {
    let s = dp_greedy_suite::obs::snapshot();
    println!(
        "\n-- metrics ({} counters, {} spans) --",
        s.counters.len(),
        s.hists.len()
    );
    for (name, v) in &s.counters {
        println!("  {name:<28} {v}");
    }
    for (name, h) in &s.hists {
        println!(
            "  {name:<28} n={} total={:.6}s mean={:.6}s max={:.6}s",
            h.count,
            h.sum,
            h.mean(),
            h.max
        );
    }
}

fn cmd_example() -> Result<(), CliError> {
    let report = dp_greedy_suite::dp_greedy::paper_example::paper_report();
    let pair = &report.pairs[0];
    println!("Section V-C running example (μ=λ=1, α=0.8, θ=0.4):");
    println!("  J(d1,d2) = {:.4}", pair.jaccard);
    println!(
        "  C12 = {:.2}, C1' = {:.2}, C2' = {:.2}",
        pair.package_cost, pair.a_singleton_cost, pair.b_singleton_cost
    );
    println!("  total = {:.2} (paper: 14.96)", report.total_cost);
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--metrics` is accepted by every subcommand: strip it before
    // dispatch and print the obs summary after a successful run.
    let metrics = args.iter().any(|a| a == "--metrics");
    args.retain(|a| a != "--metrics");
    let Some(cmd) = args.first() else {
        print_usage();
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "solve" => cmd_solve(rest),
        "svg" => cmd_svg(rest),
        "explain" => cmd_explain(rest),
        "trace" => cmd_trace(rest),
        "chaos" => cmd_chaos(rest),
        "example" => cmd_example(),
        "version" | "--version" | "-V" => cmd_version(),
        "--help" | "-h" | "help" => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::Usage(format!("unknown command {other}"))),
    };
    if metrics && result.is_ok() {
        print_metrics();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            print_usage();
            ExitCode::from(2)
        }
        Err(CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `dpg` — command-line front end for the DP_Greedy reproduction.
//!
//! ```text
//! dpg generate --out trace.json [--seed N] [--steps N] [--taxis N]
//! dpg stats trace.json
//! dpg solve trace.json [--algo dpg|optimal|greedy|package|multi]
//!                      [--mu X] [--lambda X] [--alpha X] [--theta X]
//! dpg algos [--json]
//! dpg run --algo NAME [trace.json] [--mu X] [--lambda X] [--alpha X] [--theta X] [--json]
//! dpg serve --dir DIR [--input FILE] [--algo NAME] [--epoch-len N] [--dump-state]
//!           [--telemetry-addr HOST:PORT] [--telemetry-file PATH] [--dump-journal]
//! dpg top (--addr HOST:PORT | --file PATH) [--interval-ms N] [--journal N]
//!         [--raw metrics|journal] [--once]
//! dpg trace solve trace.json --out events.jsonl [--algo NAME] [...]
//! dpg trace example --out events.jsonl
//! dpg chaos [--seed N] [--fault-rate X] [--sweep]
//! dpg example
//! dpg version
//! ```
//!
//! Traces are the JSON format of `mcs_trace::io` (generated here or
//! imported from elsewhere).
//!
//! The binary is one thin dispatch layer per subcommand (see
//! [`commands`]); everything that solves a whole request sequence goes
//! through the `mcs-engine` solver registry, so `dpg algos` lists exactly
//! what `dpg run --algo` and `dpg trace solve --algo` accept.
//!
//! Every subcommand additionally accepts `--metrics`, which prints the
//! `mcs-obs` counter/span summary (phase timings and work counters) after
//! the command completes. `dpg trace` derives the decision ledger of a
//! run — one JSON-lines event per cache interval, transfer, and
//! package-delivery choice — verifies it reconciles with the reported
//! total cost, and writes it to `--out` (byte-deterministic for a given
//! input; see the README's "Observability" section for the schema).
//!
//! Exit codes follow the usual convention: `0` on success, `1` on a
//! runtime failure (unreadable trace, I/O error, ledger mismatch), `2` on
//! a usage error (unknown command, unknown or malformed flag, missing
//! argument).

mod cli;
mod commands;

use std::process::ExitCode;

use cli::{print_metrics, print_usage, CliError};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--metrics` is accepted by every subcommand: strip it before
    // dispatch and print the obs summary after a successful run.
    let metrics = args.iter().any(|a| a == "--metrics");
    args.retain(|a| a != "--metrics");
    let Some(cmd) = args.first() else {
        print_usage();
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => commands::generate::run(rest),
        "stats" => commands::stats::run(rest),
        "solve" => commands::solve::run(rest),
        "algos" => commands::algos::run(rest),
        "run" => commands::run_algo::run(rest),
        "serve" => commands::serve::run(rest),
        "top" => commands::top::run(rest),
        "svg" => commands::svg::run(rest),
        "explain" => commands::explain::run(rest),
        "trace" => commands::trace::run(rest),
        "chaos" => commands::chaos::run(rest),
        "example" => commands::example::run(rest),
        "version" | "--version" | "-V" => commands::version::run(),
        "--help" | "-h" | "help" => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::Usage(format!("unknown command {other}"))),
    };
    if metrics && result.is_ok() {
        print_metrics();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            print_usage();
            ExitCode::from(2)
        }
        Err(CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Shared CLI plumbing: error taxonomy, usage text, flag parsing, and the
//! `--metrics` summary printer. Subcommand logic lives in [`crate::commands`].

use dp_greedy_suite::engine::RunContext;
use dp_greedy_suite::model::defaults::{DEFAULT_ALPHA, DEFAULT_LAMBDA, DEFAULT_MU, DEFAULT_THETA};
use dp_greedy_suite::model::json::{self, FromJson};
use dp_greedy_suite::model::CostPlane;
use dp_greedy_suite::prelude::CostModel;

/// A CLI failure, split by whose fault it is: [`CliError::Usage`] means
/// the invocation itself was malformed (exit 2), [`CliError::Runtime`]
/// means a well-formed invocation failed while running (exit 1).
pub enum CliError {
    /// Malformed invocation — exit 2.
    Usage(String),
    /// Well-formed invocation that failed while running — exit 1.
    Runtime(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.to_string())
    }
}

pub fn print_usage() {
    eprintln!(
        "usage:\n  dpg generate --out FILE [--seed N] [--steps N] [--taxis N]\n  \
         dpg stats FILE\n  \
         dpg solve FILE [--algo dpg|optimal|greedy|package|multi] \
         [--mu X] [--lambda X] [--alpha X] [--theta X]\n  \
         dpg algos [--json]\n  \
         dpg run --algo NAME [FILE] [--mu X] [--lambda X] [--alpha X] [--theta X] \
         [--max-group K] [--adaptive] [--cost-model FILE] [--json]\n  \
         dpg serve --dir DIR [--input FILE] [--algo NAME] [--epoch-len N] [--decay X] \
         [--settle-timeout-ms N] [--max-items N] [--seed N] [--quiet] [--dump-state] \
         [--telemetry-addr HOST:PORT] [--telemetry-file PATH] [--dump-journal]\n  \
         dpg top (--addr HOST:PORT | --file PATH) [--interval-ms N] [--journal N] \
         [--raw metrics|journal] [--once]\n  \
         dpg svg FILE --out FILE.svg [--item N] [--mu X] [--lambda X]\n  \
         dpg explain FILE [--a N --b N] [--mu X] [--lambda X] [--alpha X]\n  \
         dpg trace solve FILE --out FILE.jsonl [--algo NAME] [--mu X] [--lambda X] \
         [--alpha X] [--theta X] [--max-group K] [--adaptive] [--cost-model FILE]\n  \
         dpg trace example --out FILE.jsonl\n  \
         dpg trace pack IN OUT [--json]\n  \
         dpg chaos [--seed N] [--fault-rate X] [--mean-outage X] [--steps N] \
         [--mu X] [--lambda X] [--alpha X] [--theta X] [--sweep]\n  \
         dpg example\n  \
         dpg version\n\
         `dpg algos` lists the solver registry NAMEs (--max-group/--adaptive \
         drive the dpg_k K-package solver; --cost-model points run/trace solve \
         at a homogeneous, hetero, or tiered cost-plane JSON); every subcommand \
         also accepts --metrics (print the obs summary)"
    );
}

/// Rejects flags the subcommand does not know. `value_flags` consume the
/// following token; `bool_flags` stand alone. Positional arguments are
/// ignored.
pub fn check_flags(
    cmd: &str,
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<(), CliError> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            if value_flags.contains(&a) {
                i += 2;
                continue;
            }
            if bool_flags.contains(&a) {
                i += 1;
                continue;
            }
            return Err(CliError::Usage(format!("unknown flag {a} for `dpg {cmd}`")));
        }
        i += 1;
    }
    Ok(())
}

/// First positional argument (the trace file). Usage error if absent or
/// if a flag landed where the file was expected.
pub fn trace_arg<'a>(cmd: &str, args: &'a [String]) -> Result<&'a String, CliError> {
    match args.first() {
        Some(a) if !a.starts_with("--") => Ok(a),
        _ => Err(CliError::Usage(format!("{cmd} needs a trace file"))),
    }
}

pub fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Option<Result<T, CliError>> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?
            .parse::<T>()
            .map_err(|_| CliError::Usage(format!("bad value for {flag}")))
    })
}

/// The parsed solver parameters shared by `dpg run`, `dpg trace solve`,
/// and (via [`model_flags`]) every other model-taking subcommand — one
/// parsing path, one validation path.
pub struct SolverParams {
    /// The homogeneous projection of [`SolverParams::plane`] — exact for
    /// a homogeneous (or uniformly-collapsible) plane, a mean-rate
    /// summary otherwise. Header echoes and the plane-less subcommands
    /// read this.
    pub model: CostModel,
    /// The full cost plane: `--cost-model FILE` when given, otherwise
    /// the homogeneous model from `--mu/--lambda/--alpha`.
    pub plane: CostPlane,
    /// The `--cost-model` path, kept for the header echo.
    pub cost_model_path: Option<String>,
    /// Packing threshold `θ` (fixed mode).
    pub theta: f64,
    /// Maximum package size (`2` = the paper's pairwise shape).
    pub max_group: usize,
    /// Derive `θ` per trace from the prescan instead of the fixed value.
    pub adaptive: bool,
}

impl SolverParams {
    /// The engine [`RunContext`] these parameters describe.
    pub fn context(&self) -> RunContext {
        let ctx = RunContext::from_plane(self.plane.clone())
            .with_theta(self.theta)
            .with_max_group(self.max_group);
        if self.adaptive {
            ctx.with_adaptive_theta()
        } else {
            ctx
        }
    }
}

/// Loads and validates a `--cost-model` file. Unreadable files are
/// runtime errors (exit 1); malformed or invalid contents are usage
/// errors (exit 2) reported as `path:line:col: message` — semantic
/// validation failures (e.g. a negative rate) have no position and land
/// on `1:1`.
fn load_cost_plane(path: &str) -> Result<CostPlane, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("cannot read cost model {path}: {e}")))?;
    let positional = |e: json::JsonError| {
        let (line, col) = json::line_col(&text, e.at);
        CliError::Usage(format!("{path}:{line}:{col}: {}", e.msg))
    };
    let value = json::parse(&text).map_err(positional)?;
    CostPlane::from_json(&value).map_err(positional)
}

/// Parses and validates the shared solver flags
/// (`--mu/--lambda/--alpha/--theta/--max-group/--adaptive`, plus
/// `--cost-model FILE` for a heterogeneous or tiered plane) over the
/// caller-supplied `(μ, λ, α, θ)` baseline — `dpg run` passes the paper
/// example's numbers when no trace file is given, everything else the
/// workspace defaults. Positional usage errors, like `dpg serve`.
pub fn solver_flags(args: &[String], base: (f64, f64, f64, f64)) -> Result<SolverParams, CliError> {
    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(base.0);
    let lambda: f64 = parse_flag(args, "--lambda").transpose()?.unwrap_or(base.1);
    let alpha: f64 = parse_flag(args, "--alpha").transpose()?.unwrap_or(base.2);
    let theta: f64 = parse_flag(args, "--theta").transpose()?.unwrap_or(base.3);
    let max_group: usize = parse_flag(args, "--max-group").transpose()?.unwrap_or(2);
    let adaptive = args.iter().any(|a| a == "--adaptive");
    let cost_model_path: Option<String> = parse_flag(args, "--cost-model").transpose()?;
    if !theta.is_finite() || !(0.0..=1.0).contains(&theta) {
        return Err(CliError::Usage(format!(
            "--theta must be a Jaccard threshold in [0, 1], got {theta}"
        )));
    }
    if max_group < 2 {
        return Err(CliError::Usage(format!(
            "--max-group must be at least 2 (pairs), got {max_group}"
        )));
    }
    let (plane, model) = match &cost_model_path {
        Some(path) => {
            for flag in ["--mu", "--lambda", "--alpha"] {
                if args.iter().any(|a| a == flag) {
                    return Err(CliError::Usage(format!(
                        "{flag} conflicts with --cost-model (the file carries the rates)"
                    )));
                }
            }
            let plane = load_cost_plane(path)?;
            let model = plane.projected_homogeneous();
            (plane, model)
        }
        None => {
            let model =
                CostModel::new(mu, lambda, alpha).map_err(|e| CliError::Usage(e.to_string()))?;
            (CostPlane::Homogeneous(model), model)
        }
    };
    Ok(SolverParams {
        model,
        plane,
        cost_model_path,
        theta,
        max_group,
        adaptive,
    })
}

/// The workspace-default `(μ, λ, α, θ)` baseline for [`solver_flags`].
pub const DEFAULT_BASE: (f64, f64, f64, f64) =
    (DEFAULT_MU, DEFAULT_LAMBDA, DEFAULT_ALPHA, DEFAULT_THETA);

/// Parses the shared `--mu/--lambda/--alpha/--theta` quartet, falling back
/// to the workspace defaults ([`dp_greedy_suite::model::defaults`]).
/// Returns the validated [`CostModel`] and θ. Thin view over
/// [`solver_flags`] for subcommands without package-size knobs.
pub fn model_flags(args: &[String]) -> Result<(CostModel, f64), CliError> {
    let p = solver_flags(args, DEFAULT_BASE)?;
    Ok((p.model, p.theta))
}

/// Prints the `--metrics` summary: counters (integer then float), then
/// gauges, then span/histogram stats (with the bucketed p99 estimate),
/// in deterministic name order.
pub fn print_metrics() {
    let s = dp_greedy_suite::obs::snapshot();
    println!(
        "\n-- metrics ({} counters, {} gauges, {} spans) --",
        s.counters.len() + s.fcounters.len(),
        s.gauges.len(),
        s.hists.len()
    );
    for (name, v) in &s.counters {
        println!("  {name:<28} {v}");
    }
    for (name, v) in &s.fcounters {
        println!("  {name:<28} {v}");
    }
    for (name, v) in &s.gauges {
        println!("  {name:<28} {v}");
    }
    for (name, h) in &s.hists {
        println!(
            "  {name:<28} n={} total={:.6}s mean={:.6}s p99={:.6}s max={:.6}s",
            h.count,
            h.sum,
            h.mean(),
            h.quantile(0.99),
            h.max
        );
    }
}

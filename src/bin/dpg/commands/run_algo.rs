//! `dpg run --algo NAME [FILE]` — run any registered solver.
//!
//! Without a trace file the Section V-C running example is solved under
//! the paper's parameters (μ=λ=1, α=0.8, θ=0.4); with a file the
//! workspace defaults apply. Explicit `--mu/--lambda/--alpha/--theta`
//! flags override either baseline. The derived decision ledger is
//! reconciled against the solver's reported total before anything is
//! printed, so a success exit certifies the accounting.

use crate::cli::{check_flags, parse_flag, solver_flags, CliError};
use dp_greedy_suite::dp_greedy::paper_example;
use dp_greedy_suite::engine::{find, SolverKind};
use dp_greedy_suite::model::json::Json;
use dp_greedy_suite::trace::io::TraceFile;

/// The `run` flags that stand alone (no value token follows).
const BOOL_FLAGS: [&str; 2] = ["--json", "--adaptive"];

/// First positional argument, skipping `--flag value` pairs (every `run`
/// flag outside [`BOOL_FLAGS`] consumes a value).
fn positional(args: &[String]) -> Option<&String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if BOOL_FLAGS.contains(&a) {
            i += 1;
        } else if a.starts_with("--") {
            i += 2;
        } else {
            return Some(&args[i]);
        }
    }
    None
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "run",
        args,
        &[
            "--algo",
            "--mu",
            "--lambda",
            "--alpha",
            "--theta",
            "--max-group",
            "--cost-model",
        ],
        &BOOL_FLAGS,
    )?;
    let algo: String =
        parse_flag(args, "--algo").ok_or("run needs --algo NAME (see `dpg algos`)")??;
    let Some(solver) = find(&algo) else {
        return Err(CliError::Usage(format!(
            "unknown algorithm {algo} (see `dpg algos`)"
        )));
    };

    // Baseline parameters: the paper example without a file, the
    // workspace defaults with one. Explicit flags override either.
    let file = positional(args);
    let (seq, source, base) = match file {
        Some(path) => {
            let f = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
            (f.sequence, path.clone(), crate::cli::DEFAULT_BASE)
        }
        None => {
            let pm = paper_example::paper_model();
            (
                paper_example::paper_sequence(),
                "paper example".to_string(),
                (pm.mu(), pm.lambda(), pm.alpha(), paper_example::THETA),
            )
        }
    };
    let params = solver_flags(args, base)?;
    let (mu, lambda, alpha) = (
        params.model.mu(),
        params.model.lambda(),
        params.model.alpha(),
    );
    let theta = params.theta;
    let ctx = params.context();
    // Package knobs are echoed only when they deviate from the pairwise
    // defaults, keeping the historical header byte-stable.
    let mut knobs = String::new();
    if params.max_group != 2 {
        knobs.push_str(&format!(" max_group={}", params.max_group));
    }
    if params.adaptive {
        knobs.push_str(" adaptive");
    }
    if let Some(path) = &params.cost_model_path {
        // μ/λ/α above are the plane's homogeneous projection; name the
        // real plane so the header is honest about where rates came from.
        knobs.push_str(&format!(" cost_model={path} ({})", params.plane.shape()));
    }

    // An empty trace is a degenerate but legal input: every solver's
    // answer is the empty schedule at zero cost. Short-circuit uniformly
    // instead of leaving each of the eleven solvers to its own edge case
    // (pinned across the whole registry by `tests/cli_empty_trace.rs`).
    if seq.requests().is_empty() {
        eprintln!("warning: {source} contains no requests; emitting the zero-cost empty solution");
        if args.iter().any(|a| a == "--json") {
            let doc = Json::Obj(vec![
                ("algo".into(), Json::Str(solver.name().into())),
                ("kind".into(), Json::Str(solver.kind().label().into())),
                ("source".into(), Json::Str(source)),
                ("total_cost".into(), Json::Num(0.0)),
                ("ave_cost".into(), Json::Num(0.0)),
                ("total_accesses".into(), Json::Num(0.0)),
                ("reconciliation_gap".into(), Json::Num(0.0)),
            ]);
            println!("{}", doc.to_string_pretty());
        } else {
            println!(
                "{} ({}) on {source}: μ={mu} λ={lambda} α={alpha} θ={theta}{knobs}",
                solver.name(),
                solver.kind().label()
            );
            println!("total=0.0000 ave_cost=0.000000 (0 item accesses, ledger gap 0.0e0)");
        }
        return Ok(());
    }

    // Shape gate: a solver that cannot price this cost plane (or fleet
    // size) is an invocation error, reported before any solving starts.
    solver.validate(&seq, &ctx).map_err(CliError::Usage)?;

    if let Some(limit) = solver.request_limit() {
        if seq.requests().len() > limit {
            return Err(CliError::Runtime(format!(
                "{} handles at most {limit} requests; {source} has {}",
                solver.name(),
                seq.requests().len()
            )));
        }
    }

    let sol = solver.solve(&seq, &ctx);
    let gap = sol.reconciliation_gap();
    if gap > 1e-6 {
        return Err(CliError::Runtime(format!(
            "ledger does not reconcile: gap {gap} for {}",
            solver.name()
        )));
    }

    if args.iter().any(|a| a == "--json") {
        let doc = Json::Obj(vec![
            ("algo".into(), Json::Str(sol.algo.into())),
            ("kind".into(), Json::Str(sol.kind.label().into())),
            ("source".into(), Json::Str(source)),
            ("total_cost".into(), Json::Num(sol.total_cost)),
            ("ave_cost".into(), Json::Num(sol.ave_cost())),
            (
                "total_accesses".into(),
                Json::Num(sol.total_accesses as f64),
            ),
            ("reconciliation_gap".into(), Json::Num(gap)),
        ]);
        println!("{}", doc.to_string_pretty());
        return Ok(());
    }

    println!(
        "{} ({}) on {source}: μ={mu} λ={lambda} α={alpha} θ={theta}{knobs}",
        sol.algo,
        sol.kind.label()
    );
    println!(
        "total={:.4} ave_cost={:.6} ({} item accesses, ledger gap {gap:.1e})",
        sol.total_cost,
        sol.ave_cost(),
        sol.total_accesses
    );
    if sol.kind == SolverKind::Offline {
        let b = sol.ledger().breakdown();
        println!(
            "breakdown: cache {:.4} + transfer {:.4} + package_delivery {:.4}",
            b.cache, b.transfer, b.package_delivery
        );
    }
    Ok(())
}

//! `dpg example` — print the Section V-C running example numbers.

use crate::cli::{check_flags, CliError};

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags("example", args, &[], &[])?;
    let report = dp_greedy_suite::dp_greedy::paper_example::paper_report();
    let pair = &report.pairs[0];
    println!("Section V-C running example (μ=λ=1, α=0.8, θ=0.4):");
    println!("  J(d1,d2) = {:.4}", pair.jaccard);
    println!(
        "  C12 = {:.2}, C1' = {:.2}, C2' = {:.2}",
        pair.package_cost, pair.a_singleton_cost, pair.b_singleton_cost
    );
    println!("  total = {:.2} (paper: 14.96)", report.total_cost);
    Ok(())
}

//! `dpg chaos` — fault-injection smoke run over the synthetic workload.
//!
//! Plans a DP_Greedy fleet through the engine registry, injects a seeded
//! `FaultPlan` (`mcs_model::fault`), replays every explicit schedule
//! through the degraded engine ([`mcs_sim::chaos_solver`]) and reports
//! the degradation ratio plus recovery metrics. Deterministic for a fixed
//! `--seed`. With `--sweep` the full fault-rate × θ × α grid of
//! `mcs_experiments::chaos_exp` is printed instead.

use crate::cli::{check_flags, parse_flag, CliError};
use dp_greedy_suite::engine::{find, RunContext};
use dp_greedy_suite::experiments::chaos_exp;
use dp_greedy_suite::model::defaults::DEFAULT_SEED;
use dp_greedy_suite::model::fault::FaultPlan;
use dp_greedy_suite::online::{degradation_ratio, resilient_ski_rental};
use dp_greedy_suite::prelude::*;
use dp_greedy_suite::sim::chaos_solver;

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "chaos",
        args,
        &[
            "--seed",
            "--fault-rate",
            "--mean-outage",
            "--steps",
            "--mu",
            "--lambda",
            "--alpha",
            "--theta",
        ],
        &["--sweep"],
    )?;
    let seed: u64 = parse_flag(args, "--seed")
        .transpose()?
        .unwrap_or(DEFAULT_SEED);
    let fault_rate: f64 = parse_flag(args, "--fault-rate")
        .transpose()?
        .unwrap_or(0.05);
    let mean_outage: f64 = parse_flag(args, "--mean-outage")
        .transpose()?
        .unwrap_or(2.0);
    let steps: usize = parse_flag(args, "--steps").transpose()?.unwrap_or(600);
    let (model, theta) = crate::cli::model_flags(args)?;
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(CliError::Usage(format!(
            "--fault-rate must be in [0, 1], got {fault_rate}"
        )));
    }

    let mut cfg = WorkloadConfig::paper_like(seed);
    cfg.steps = steps;

    if args.iter().any(|a| a == "--sweep") {
        let e = chaos_exp::run(&cfg, seed);
        println!("{}", e.table());
        println!("worst degradation ratio: {:.4}", e.worst_ratio());
        return Ok(());
    }

    let seq = generate(&cfg);
    let plan = FaultPlan::random(
        seed,
        seq.servers(),
        seq.horizon(),
        fault_rate,
        mean_outage,
        fault_rate,
    );
    println!(
        "chaos: seed={seed} fault-rate={fault_rate} mean-outage={mean_outage} \
         μ={} λ={} α={} θ={theta}  ({} requests, {} crash windows)",
        model.mu(),
        model.lambda(),
        model.alpha(),
        seq.len(),
        plan.crashes.len()
    );

    let solver = find("dp_greedy").expect("dp_greedy is registered");
    let ctx = RunContext::new(model).with_theta(theta);
    let chaos = chaos_solver(&seq, solver, &ctx, &plan)
        .expect("dp_greedy solutions carry explicit schedules");
    println!("fleet (DP_Greedy plan under degraded replay):");
    println!("  fault-free cost     {:.4}", chaos.fault_free_cost);
    println!("  degraded cost       {:.4}", chaos.degraded_cost);
    println!("  degradation ratio   {:.4}", chaos.degradation_ratio);
    println!(
        "  degraded requests   {}/{} ({:.1}%)",
        chaos.fault.requests_degraded,
        chaos.fault.requests_total,
        100.0 * chaos.fault.degraded_fraction()
    );
    println!(
        "  copies lost {}  recaches {}  retries {}  origin fallbacks {}",
        chaos.fault.copies_lost,
        chaos.fault.recaches,
        chaos.fault.retries,
        chaos.fault.origin_fallbacks
    );
    println!(
        "  mean time to repair {:.4} ({} repairs)",
        chaos.fault.mean_time_to_repair, chaos.fault.repairs
    );

    // On-line view: crash-aware ski-rental per item, same plan.
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    let mut measured = 0usize;
    for i in 0..seq.items() {
        let trace = seq.item_trace(ItemId(i));
        if trace.is_empty() {
            continue;
        }
        let s = degradation_ratio(&trace, &model, &plan, resilient_ski_rental);
        worst = worst.max(s.degradation_ratio);
        sum += s.degradation_ratio;
        measured += 1;
    }
    if measured > 0 {
        println!("online (resilient ski-rental per item):");
        println!("  mean degradation    {:.4}", sum / measured as f64);
        println!("  worst degradation   {worst:.4}");
    }
    Ok(())
}

//! `dpg version` / `dpg --version` — crate version plus git-independent
//! build information (everything comes from the Cargo environment, so the
//! output is identical whether or not the source tree is a checkout).

use crate::cli::CliError;

pub fn run() -> Result<(), CliError> {
    println!("dpg {}", env!("CARGO_PKG_VERSION"));
    println!(
        "{} — DP_Greedy (CLUSTER 2019) reproduction suite",
        env!("CARGO_PKG_NAME")
    );
    println!("offline build: no external dependencies (see DESIGN.md)");
    Ok(())
}

//! `dpg generate` — write a synthetic Shenzhen-like trace to disk.

use crate::cli::{check_flags, parse_flag, CliError};
use dp_greedy_suite::model::defaults::DEFAULT_SEED;
use dp_greedy_suite::prelude::*;
use dp_greedy_suite::trace::io::TraceFile;

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "generate",
        args,
        &["--out", "--seed", "--steps", "--taxis"],
        &[],
    )?;
    let out: String = parse_flag(args, "--out").ok_or("--out FILE is required")??;
    let seed: u64 = parse_flag(args, "--seed")
        .transpose()?
        .unwrap_or(DEFAULT_SEED);
    let mut cfg = WorkloadConfig::paper_like(seed);
    if let Some(steps) = parse_flag(args, "--steps").transpose()? {
        cfg.steps = steps;
    }
    if let Some(taxis) = parse_flag::<usize>(args, "--taxis").transpose()? {
        cfg.taxis = taxis;
        // Spread affinities over the new pair count.
        let pairs = taxis / 2;
        cfg.pair_affinity = (0..pairs)
            .map(|p| 0.95 - 0.9 * p as f64 / pairs.max(1) as f64)
            .collect();
    }
    let seq = generate(&cfg);
    println!(
        "generated {} requests ({} item accesses) over {} zones",
        seq.len(),
        seq.total_item_accesses(),
        seq.servers()
    );
    TraceFile::synthetic(cfg, seq)
        .save(&out)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    println!("wrote {out}");
    Ok(())
}

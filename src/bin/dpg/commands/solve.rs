//! `dpg solve` — the legacy detailed solve report. Each algorithm keeps
//! its bespoke per-pair/per-group output (which the generic registry
//! `Solution` deliberately does not carry); for uniform, registry-driven
//! runs use `dpg run --algo`.

use crate::cli::{check_flags, model_flags, trace_arg, CliError};
use dp_greedy_suite::dp_greedy::multi_item::{dp_greedy_multi, MultiItemConfig};
use dp_greedy_suite::prelude::*;
use dp_greedy_suite::trace::io::TraceFile;

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "solve",
        args,
        &["--algo", "--mu", "--lambda", "--alpha", "--theta"],
        &[],
    )?;
    let path = trace_arg("solve", args)?;
    let file = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let seq = &file.sequence;

    let (model, theta) = model_flags(args)?;
    let algo: String = crate::cli::parse_flag(args, "--algo")
        .transpose()?
        .unwrap_or_else(|| "dpg".to_string());

    println!(
        "μ={} λ={} α={} θ={theta}  ({} requests)",
        model.mu(),
        model.lambda(),
        model.alpha(),
        seq.len()
    );
    match algo.as_str() {
        "dpg" => {
            let r = dp_greedy(seq, &DpGreedyConfig::new(model).with_theta(theta));
            println!("packed pairs: {:?}", r.packing.pairs);
            for p in &r.pairs {
                println!(
                    "  ({}, {}) J={:.3}: C12={:.2} C1'={:.2} C2'={:.2} (ave {:.4})",
                    p.a,
                    p.b,
                    p.jaccard,
                    p.package_cost,
                    p.a_singleton_cost,
                    p.b_singleton_cost,
                    p.ave_cost()
                );
            }
            println!(
                "DP_Greedy total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "optimal" => {
            let r = optimal_non_packing(seq, &model);
            println!(
                "Optimal total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "greedy" => {
            let r = greedy_non_packing(seq, &model);
            println!(
                "Greedy total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "package" => {
            let r = package_served(seq, &model, theta);
            println!(
                "Package_Served total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        "multi" => {
            let r = dp_greedy_multi(seq, &MultiItemConfig::new(model).with_theta(theta));
            for g in &r.groups {
                let items: Vec<String> = g.items.iter().map(|d| d.to_string()).collect();
                println!(
                    "  group [{}]: package={:.2} partial={:.2} ({} group deliveries)",
                    items.join(", "),
                    g.package_cost,
                    g.partial_cost,
                    g.group_deliveries
                );
            }
            println!(
                "Multi-item DP_Greedy total={:.2} ave_cost={:.4}",
                r.total_cost,
                r.ave_cost()
            );
        }
        other => return Err(CliError::Usage(format!("unknown algorithm {other}"))),
    }
    Ok(())
}

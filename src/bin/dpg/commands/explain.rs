//! `dpg explain` — narrate the three-arm decision for one item pair.

use crate::cli::{check_flags, parse_flag, trace_arg, CliError};
use dp_greedy_suite::model::defaults::{DEFAULT_ALPHA, DEFAULT_LAMBDA, DEFAULT_MU};
use dp_greedy_suite::prelude::*;
use dp_greedy_suite::trace::io::TraceFile;

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "explain",
        args,
        &["--a", "--b", "--mu", "--lambda", "--alpha"],
        &[],
    )?;
    let path = trace_arg("explain", args)?;
    let a: u32 = parse_flag(args, "--a").transpose()?.unwrap_or(0);
    let b: u32 = parse_flag(args, "--b").transpose()?.unwrap_or(1);
    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(DEFAULT_MU);
    let lambda: f64 = parse_flag(args, "--lambda")
        .transpose()?
        .unwrap_or(DEFAULT_LAMBDA);
    let alpha: f64 = parse_flag(args, "--alpha")
        .transpose()?
        .unwrap_or(DEFAULT_ALPHA);

    let file = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let model = CostModel::new(mu, lambda, alpha).map_err(|e| CliError::Usage(e.to_string()))?;
    let config = DpGreedyConfig::new(model);
    print!(
        "{}",
        dp_greedy_suite::dp_greedy::explain::explain_pair_text(
            &file.sequence,
            ItemId(a),
            ItemId(b),
            &config
        )
    );
    Ok(())
}

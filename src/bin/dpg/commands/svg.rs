//! `dpg svg` — render the optimal single-item schedule as an SVG timeline.

use crate::cli::{check_flags, parse_flag, trace_arg, CliError};
use dp_greedy_suite::model::defaults::{DEFAULT_ALPHA, DEFAULT_LAMBDA, DEFAULT_MU};
use dp_greedy_suite::prelude::*;
use dp_greedy_suite::trace::io::TraceFile;

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags("svg", args, &["--out", "--item", "--mu", "--lambda"], &[])?;
    let path = trace_arg("svg", args)?;
    let out: String = parse_flag(args, "--out").ok_or("--out FILE is required")??;
    let item: u32 = parse_flag(args, "--item").transpose()?.unwrap_or(0);
    let mu: f64 = parse_flag(args, "--mu").transpose()?.unwrap_or(DEFAULT_MU);
    let lambda: f64 = parse_flag(args, "--lambda")
        .transpose()?
        .unwrap_or(DEFAULT_LAMBDA);

    let file = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let model =
        CostModel::new(mu, lambda, DEFAULT_ALPHA).map_err(|e| CliError::Usage(e.to_string()))?;
    let trace = file.sequence.item_trace(ItemId(item));
    if trace.is_empty() {
        return Err(CliError::Runtime(format!(
            "item d{} has no requests in this trace",
            item + 1
        )));
    }
    let solved = optimal(&trace, &model);
    let svg = dp_greedy_suite::model::svg::render_svg(
        &solved.schedule,
        &trace,
        &dp_greedy_suite::model::svg::SvgOptions::default(),
    );
    std::fs::write(&out, svg).map_err(|e| CliError::Runtime(e.to_string()))?;
    println!(
        "wrote {out} (optimal schedule for d{}, cost {:.2}, {} requests)",
        item + 1,
        solved.cost,
        trace.len()
    );
    Ok(())
}

//! `dpg trace` — derive, verify, and export the decision ledger of a run.
//!
//! Both modes go through the engine: the registry solver produces a
//! [`Solution`] and the generic [`Solution::ledger`] derivation replaces
//! the former per-algorithm ledger builders. Any registered solver name
//! (or alias) is accepted by `--algo`.

use crate::cli::{check_flags, parse_flag, trace_arg, CliError};
use dp_greedy_suite::dp_greedy::paper_example;
use dp_greedy_suite::engine::{find, CachingSolver, RunContext, Solution};
use dp_greedy_suite::trace::io::TraceFile;

pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some(sub) = args.first() else {
        return Err(CliError::Usage(
            "trace needs a subcommand: solve, example, or pack".to_string(),
        ));
    };
    let rest = &args[1..];
    match sub.as_str() {
        "solve" => trace_solve(rest),
        "example" => trace_example(rest),
        "pack" => trace_pack(rest),
        other => Err(CliError::Usage(format!(
            "unknown trace subcommand {other} (expected solve, example, or pack)"
        ))),
    }
}

/// The historical display names kept for the trace summary line.
fn display_name(solver: &dyn CachingSolver) -> &'static str {
    match solver.name() {
        "dp_greedy" => "DP_Greedy",
        "optimal" => "Optimal",
        "greedy" => "Greedy",
        other => other,
    }
}

/// Derives `solution`'s ledger, checks it reconciles with the reported
/// total, writes it to `out`, and prints the cost breakdown.
fn emit_ledger(solution: &Solution, algo: &str, out: &str) -> Result<(), CliError> {
    let ledger = solution.ledger();
    let derived = ledger.total_cost();
    if (derived - solution.total_cost).abs() > 1e-6 {
        return Err(CliError::Runtime(format!(
            "ledger does not reconcile: Σ event.cost = {derived} but {algo} reported {}",
            solution.total_cost
        )));
    }
    std::fs::write(out, ledger.to_jsonl_string()).map_err(|e| CliError::Runtime(e.to_string()))?;
    let b = ledger.breakdown();
    println!(
        "wrote {out}: {} events, total {:.4} (reconciles with {algo})",
        ledger.len(),
        derived
    );
    println!(
        "breakdown: cache {:.4} + transfer {:.4} + package_delivery {:.4}",
        b.cache, b.transfer, b.package_delivery
    );
    Ok(())
}

fn trace_solve(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "trace solve",
        args,
        &[
            "--algo",
            "--mu",
            "--lambda",
            "--alpha",
            "--theta",
            "--max-group",
            "--out",
            "--cost-model",
        ],
        &["--adaptive"],
    )?;
    let path = trace_arg("trace solve", args)?;
    let out: String = parse_flag(args, "--out").ok_or("--out FILE.jsonl is required")??;
    let params = crate::cli::solver_flags(args, crate::cli::DEFAULT_BASE)?;
    let algo: String = parse_flag(args, "--algo")
        .transpose()?
        .unwrap_or_else(|| "dpg".to_string());
    let Some(solver) = find(&algo) else {
        return Err(CliError::Usage(format!(
            "unknown algorithm {algo} for trace (see `dpg algos`)"
        )));
    };

    let file = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let seq = &file.sequence;
    let ctx = params.context();
    // Shape gate, as in `dpg run`: a plane the solver cannot price is an
    // invocation error (exit 2), not a mid-solve panic.
    solver.validate(seq, &ctx).map_err(CliError::Usage)?;
    if let Some(limit) = solver.request_limit() {
        if seq.requests().len() > limit {
            return Err(CliError::Runtime(format!(
                "{} handles at most {limit} requests; this trace has {}",
                solver.name(),
                seq.requests().len()
            )));
        }
    }
    let solution = solver.solve(seq, &ctx);
    emit_ledger(&solution, display_name(solver), &out)
}

/// `dpg trace pack IN OUT` — converts a trace between the JSON and
/// binary (`DPGB`) on-disk formats. The input format is auto-detected;
/// the output defaults to binary, `--json` unpacks back to JSON. Both
/// directions preserve the sequence bit-exactly (times are stored as raw
/// `f64` bit patterns), so a packed trace solves to byte-identical
/// ledgers and cost bits.
fn trace_pack(args: &[String]) -> Result<(), CliError> {
    check_flags("trace pack", args, &[], &["--json"])?;
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [input, out] = positional.as_slice() else {
        return Err(CliError::Usage(
            "trace pack needs IN and OUT paths".to_string(),
        ));
    };
    let to_json = args.iter().any(|a| a == "--json");
    let file = TraceFile::load(input).map_err(|e| CliError::Runtime(e.to_string()))?;
    let result = if to_json {
        file.save(out)
    } else {
        file.save_binary(out)
    };
    result.map_err(|e| CliError::Runtime(e.to_string()))?;
    let bytes = std::fs::metadata(out.as_str())
        .map(|m| m.len())
        .unwrap_or(0);
    println!(
        "packed {input} -> {out} ({}, {} requests, {bytes} bytes)",
        if to_json { "json" } else { "binary" },
        file.sequence.len()
    );
    Ok(())
}

fn trace_example(args: &[String]) -> Result<(), CliError> {
    check_flags("trace example", args, &["--out"], &[])?;
    let out: String = parse_flag(args, "--out").ok_or("--out FILE.jsonl is required")??;
    let solver = find("dp_greedy").expect("dp_greedy is registered");
    let solution = solver.solve(
        &paper_example::paper_sequence(),
        &RunContext::paper_example(),
    );
    emit_ledger(&solution, display_name(solver), &out)
}

//! `dpg serve --dir DIR` — the crash-safe online serving daemon.
//!
//! Reads newline-framed `hello`/`req` frames from stdin (or `--input
//! FILE`), feeds the streaming co-occurrence statistics incrementally,
//! and settles placements through the solver registry every
//! `--epoch-len` admitted requests. All durable state lives in `--dir`:
//! an atomically-replaced checkpoint plus per-epoch write-ahead logs,
//! so `kill -9` at any instant recovers byte-identically (see
//! `crates/serve`). `--dump-state` runs full recovery, prints the
//! recovered canonical state, and exits — the crash harness and CI diff
//! exactly that output. Recovery is not read-only: like any restart it
//! persists the recovered checkpoint, truncates torn WAL tails, and (if
//! the recovered pending buffer is already full) settles that epoch, so
//! it may invoke the solver; all of this is deterministic and
//! idempotent, so dumping never changes what a subsequent restart sees.

use std::io::BufReader;
use std::path::PathBuf;
use std::time::Duration;

use crate::cli::{check_flags, model_flags, parse_flag, CliError};
use dp_greedy_suite::engine::find;
use dp_greedy_suite::serve::{serve_stream, Daemon, ServeConfig, ServeError, TelemetryServer};

fn runtime(e: ServeError) -> CliError {
    CliError::Runtime(e.to_string())
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "serve",
        args,
        &[
            "--dir",
            "--input",
            "--algo",
            "--epoch-len",
            "--decay",
            "--settle-timeout-ms",
            "--max-items",
            "--throttle-us",
            "--inject-panic-epoch",
            "--seed",
            "--telemetry-addr",
            "--telemetry-file",
            "--mu",
            "--lambda",
            "--alpha",
            "--theta",
        ],
        &["--quiet", "--dump-state", "--dump-journal"],
    )?;
    let dir: String =
        parse_flag(args, "--dir").ok_or("serve needs --dir DIR (durable state directory)")??;
    let (model, theta) = model_flags(args)?;
    let mut cfg = ServeConfig::new(PathBuf::from(dir));
    cfg.model = model;
    cfg.theta = theta;
    cfg.quiet = args.iter().any(|a| a == "--quiet");
    if let Some(algo) = parse_flag::<String>(args, "--algo").transpose()? {
        cfg.algo = algo;
    }
    if find(&cfg.algo).is_none() {
        return Err(CliError::Usage(format!(
            "unknown algorithm {} (see `dpg algos`)",
            cfg.algo
        )));
    }
    if let Some(n) = parse_flag::<usize>(args, "--epoch-len").transpose()? {
        if n == 0 {
            return Err(CliError::Usage("--epoch-len must be positive".into()));
        }
        cfg.epoch_len = n;
    }
    if let Some(d) = parse_flag::<f64>(args, "--decay").transpose()? {
        if !(d > 0.0 && d <= 1.0) {
            return Err(CliError::Usage("--decay must be in (0, 1]".into()));
        }
        cfg.decay = d;
    }
    if let Some(ms) = parse_flag::<u64>(args, "--settle-timeout-ms").transpose()? {
        if ms == 0 {
            return Err(CliError::Usage(
                "--settle-timeout-ms must be positive".into(),
            ));
        }
        cfg.settle_timeout = Duration::from_millis(ms);
    }
    if let Some(n) = parse_flag::<usize>(args, "--max-items").transpose()? {
        if n == 0 {
            return Err(CliError::Usage("--max-items must be positive".into()));
        }
        cfg.max_items = n;
    }
    if let Some(us) = parse_flag::<u64>(args, "--throttle-us").transpose()? {
        cfg.throttle = Duration::from_micros(us);
    }
    cfg.inject_panic_epoch = parse_flag::<u64>(args, "--inject-panic-epoch").transpose()?;
    if let Some(seed) = parse_flag::<u64>(args, "--seed").transpose()? {
        cfg.seed = seed;
    }
    if let Some(path) = parse_flag::<String>(args, "--telemetry-file").transpose()? {
        cfg.telemetry_file = Some(PathBuf::from(path));
    }

    if args.iter().any(|a| a == "--dump-journal") {
        // Like --dump-state: run full (deterministic, idempotent)
        // recovery, then print every journal event it produced.
        let dir = cfg.dir.clone();
        Daemon::recover(cfg)
            .map_err(runtime)?
            .ok_or_else(|| CliError::Runtime(format!("no serving state in {}", dir.display())))?;
        print!("{}", dp_greedy_suite::obs::journal::tail_jsonl(usize::MAX));
        return Ok(());
    }

    if args.iter().any(|a| a == "--dump-state") {
        // Not read-only: recovery persists the checkpoint, truncates
        // torn WAL tails, and settles a full pending buffer — all
        // deterministic and idempotent (see the module doc).
        let dir = cfg.dir.clone();
        let daemon = Daemon::recover(cfg)
            .map_err(runtime)?
            .ok_or_else(|| CliError::Runtime(format!("no serving state in {}", dir.display())))?;
        print!("{}", daemon.current_state().canonical_json());
        return Ok(());
    }

    // The control endpoint lives on its own listener thread for the
    // whole run and is shut down (joined) when this guard drops.
    let telemetry = parse_flag::<String>(args, "--telemetry-addr")
        .transpose()?
        .map(|spec| {
            TelemetryServer::spawn(&spec)
                .map_err(|e| CliError::Runtime(format!("cannot bind telemetry {spec}: {e}")))
        })
        .transpose()?;
    if let (Some(server), false) = (&telemetry, cfg.quiet) {
        eprintln!("serve: telemetry on http://{}", server.addr());
    }

    let input = parse_flag::<String>(args, "--input").transpose()?;
    let (state, summary) = match &input {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError::Runtime(format!("cannot open {path}: {e}")))?;
            serve_stream(cfg, BufReader::new(file)).map_err(runtime)?
        }
        None => serve_stream(cfg, std::io::stdin().lock()).map_err(runtime)?,
    };
    let source = input.unwrap_or_else(|| "stdin".to_string());
    println!(
        "serve: {source} done: admitted={} stale={} rejected={} malformed={} replayed={}",
        summary.admitted, summary.stale, summary.rejected, summary.malformed, summary.replayed
    );
    println!(
        "state: epoch={} admitted={} pending={} cum_cost={:.4} degraded_epochs={:?}",
        state.epoch,
        state.admitted,
        state.pending.len(),
        state.cum_cost,
        state.degraded_epochs
    );
    if let Some(ratio) = state.degradation_ratio() {
        println!("degradation_ratio={ratio:.4}");
    }
    Ok(())
}

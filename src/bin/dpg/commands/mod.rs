//! One module per `dpg` subcommand. Each exposes
//! `run(args: &[String]) -> Result<(), CliError>` (parameterless for
//! `version`); dispatch lives in `main.rs`, shared plumbing in
//! [`crate::cli`]. Whole-sequence solves resolve their algorithm from the
//! `mcs-engine` registry.

pub mod algos;
pub mod chaos;
pub mod example;
pub mod explain;
pub mod generate;
pub mod run_algo;
pub mod serve;
pub mod solve;
pub mod stats;
pub mod svg;
pub mod top;
pub mod trace;
pub mod version;

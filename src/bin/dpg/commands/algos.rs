//! `dpg algos` — list the `mcs-engine` solver registry.
//!
//! The plain rendering is a human-readable table; `--json` emits the
//! machine-readable form the CI registry-smoke job and the golden CLI
//! test consume: `{"algos": [{name, kind, description, request_limit}],
//! "aliases": [{alias, target}]}` in registry order.

use crate::cli::{check_flags, CliError};
use dp_greedy_suite::engine::{aliases, solvers};
use dp_greedy_suite::model::json::Json;

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags("algos", args, &[], &["--json"])?;
    if args.iter().any(|a| a == "--json") {
        let algos: Vec<Json> = solvers()
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(s.name().into())),
                    ("kind".into(), Json::Str(s.kind().label().into())),
                    ("description".into(), Json::Str(s.description().into())),
                    (
                        "request_limit".into(),
                        s.request_limit()
                            .map_or(Json::Null, |l| Json::Num(l as f64)),
                    ),
                ])
            })
            .collect();
        let alias_rows: Vec<Json> = aliases()
            .iter()
            .map(|(alias, target)| {
                Json::Obj(vec![
                    ("alias".into(), Json::Str((*alias).into())),
                    ("target".into(), Json::Str((*target).into())),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("algos".into(), Json::Arr(algos)),
            ("aliases".into(), Json::Arr(alias_rows)),
        ]);
        println!("{}", doc.to_string_pretty());
        return Ok(());
    }
    println!("registered solvers (use with `dpg run --algo NAME`):");
    for s in solvers() {
        let limit = s
            .request_limit()
            .map_or(String::new(), |l| format!("  [≤{l} requests]"));
        println!(
            "  {:<16} {:<8} {}{limit}",
            s.name(),
            s.kind().label(),
            s.description()
        );
    }
    println!("aliases:");
    for (alias, target) in aliases() {
        println!("  {alias:<16} → {target}");
    }
    Ok(())
}

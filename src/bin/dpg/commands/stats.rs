//! `dpg stats` — summarize a trace file (sizes, hot zones, pair spectrum).

use crate::cli::{check_flags, trace_arg, CliError};
use dp_greedy_suite::trace::io::TraceFile;
use dp_greedy_suite::trace::stats::{pair_spectrum, TraceStats};

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags("stats", args, &[], &[])?;
    let path = trace_arg("stats", args)?;
    let file = TraceFile::load(path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let seq = &file.sequence;
    let st = TraceStats::from_sequence(seq);
    println!(
        "{} requests, {} item accesses, {} servers, {} items, horizon t={:.2}",
        st.requests,
        st.item_accesses,
        seq.servers(),
        seq.items(),
        st.horizon
    );
    if let Some((zone, count)) = st.hottest_zone() {
        println!(
            "hottest zone: {zone} with {count} requests; top-10 share {:.1}%",
            100.0 * st.top_zone_share(10)
        );
    }
    println!("\ntop pairs by Jaccard:");
    for row in pair_spectrum(seq).iter().take(8) {
        println!(
            "  ({}, {})  freq={:<6} J={:.4}",
            row.a, row.b, row.frequency, row.jaccard
        );
    }
    Ok(())
}

//! `dpg top` — live terminal view of a serving daemon's telemetry plane.
//!
//! Polls the daemon's control endpoint (`--addr HOST:PORT`, the
//! `--telemetry-addr` of `dpg serve`) or its published exposition file
//! (`--file PATH`, the `--telemetry-file`) and renders a refreshing
//! summary: request rate, admission latency quantiles read off the
//! exported histogram buckets, epoch settlement outcomes, degradation
//! ratio, checkpoint age, and the journal tail (endpoint mode only — the
//! file carries metrics, not the journal).
//!
//! `--raw metrics|journal` is the curl-equivalent: one scrape, raw body
//! to stdout, no rendering — what CI uses to assert on the exposition.
//!
//! Exit taxonomy (matching the rest of `dpg`): a malformed invocation is
//! usage (2); an unreachable daemon — on the first poll or, as "daemon
//! gone", after a successful connect — is a runtime failure (1), never a
//! panic.

use std::collections::HashMap;
use std::io::{Read, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::time::Duration;

use crate::cli::{check_flags, parse_flag, CliError};

/// Journal lines shown under the live view.
const DEFAULT_JOURNAL_ROWS: usize = 5;

enum Source {
    Addr(String),
    File(PathBuf),
}

impl Source {
    fn describe(&self) -> String {
        match self {
            Source::Addr(a) => format!("http://{a}"),
            Source::File(p) => p.display().to_string(),
        }
    }

    fn fetch_metrics(&self) -> Result<String, String> {
        match self {
            Source::Addr(a) => http_get(a, "/metrics"),
            Source::File(p) => {
                std::fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))
            }
        }
    }

    /// `None` in file mode: the published file carries the exposition
    /// only, the journal lives behind the endpoint.
    fn fetch_journal(&self, n: usize) -> Option<Result<String, String>> {
        match self {
            Source::Addr(a) => Some(http_get(a, &format!("/journal?n={n}"))),
            Source::File(_) => None,
        }
    }
}

/// Minimal HTTP/1.0 GET against the daemon's hand-rolled responder.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let target = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no addresses"))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(2))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(2))))
        .map_err(|e| format!("socket {addr}: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("{addr} answered {status}"));
    }
    Ok(body.to_string())
}

/// One parsed scrape: plain samples plus cumulative histogram buckets.
#[derive(Default)]
struct Scrape {
    values: HashMap<String, f64>,
    buckets: HashMap<String, Vec<(f64, u64)>>,
}

impl Scrape {
    fn parse(text: &str) -> Scrape {
        let mut s = Scrape::default();
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.rsplit_once(' ') else {
                continue;
            };
            if let Some((hist, rest)) = name.split_once("_bucket{le=\"") {
                let Some(le) = rest.strip_suffix("\"}") else {
                    continue;
                };
                let le = match le {
                    "+Inf" => f64::INFINITY,
                    other => match other.parse() {
                        Ok(v) => v,
                        Err(_) => continue,
                    },
                };
                if let Ok(c) = value.parse::<u64>() {
                    s.buckets.entry(hist.to_string()).or_default().push((le, c));
                }
            } else if let Ok(v) = value.parse::<f64>() {
                s.values.insert(name.to_string(), v);
            }
        }
        s
    }

    fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Quantile estimate off a cumulative bucket series (the same
    /// one-bucket-width bound as `HistSummary::quantile`, minus the
    /// min/max clamp the exposition doesn't carry).
    fn quantile(&self, hist: &str, q: f64) -> Option<f64> {
        let buckets = self.buckets.get(hist)?;
        let count = buckets.last()?.1;
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).max(1);
        buckets.iter().find(|&&(_, c)| c >= rank).map(|&(le, _)| le)
    }
}

fn fmt_count(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |v| format!("{v}"))
}

fn fmt_secs(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |v| format!("{v:.6}s"))
}

/// Checkpoint age in seconds, strictly from the two *monotonic* keys of
/// the exposition (`serve_scrape_t_mono` − `serve_last_checkpoint_t_mono`);
/// wall-clock keys are never consulted, so NTP steps cannot skew the age.
/// A checkpoint stamped after the scrape was cut (the daemon keeps
/// running while the body is built) would read negative — clamped to 0.
fn checkpoint_age(scrape: &Scrape) -> Option<f64> {
    let now = scrape.get("serve_scrape_t_mono")?;
    let at = scrape.get("serve_last_checkpoint_t_mono")?;
    Some((now - at).max(0.0))
}

fn render(source: &str, scrape: &Scrape, prev: Option<(f64, f64)>, journal: Option<&str>) {
    let scrape_t = scrape.get("serve_scrape_t_mono");
    let admitted = scrape.get("serve_admitted_total");
    let reqs = match (prev, scrape_t, admitted) {
        (Some((t0, a0)), Some(t1), Some(a1)) if t1 > t0 => {
            format!("{:.1}", (a1 - a0) / (t1 - t0))
        }
        _ => "-".into(),
    };
    println!(
        "dpg top — {source}   t={}",
        scrape_t.map_or_else(|| "-".into(), |t| format!("{t:.1}s"))
    );
    println!(
        "requests     {reqs} req/s   admitted={} stale={} rejected={} malformed={}",
        fmt_count(admitted),
        fmt_count(scrape.get("serve_stale_total")),
        fmt_count(scrape.get("serve_rejected_total")),
        fmt_count(scrape.get("serve_malformed_total")),
    );
    println!(
        "admission    p50={} p99={} (n={})",
        fmt_secs(scrape.quantile("serve_admit_seconds", 0.5)),
        fmt_secs(scrape.quantile("serve_admit_seconds", 0.99)),
        fmt_count(scrape.get("serve_admit_seconds_count")),
    );
    println!(
        "epochs       open={} ok={} degraded={} busy={}   degradation_ratio={}",
        fmt_count(scrape.get("serve_epoch")),
        fmt_count(scrape.get("serve_epochs_ok_total")),
        fmt_count(scrape.get("serve_epochs_degraded_total")),
        fmt_count(scrape.get("serve_settle_busy_total")),
        scrape
            .get("serve_degradation_ratio")
            .map_or_else(|| "-".into(), |v| format!("{v:.4}")),
    );
    let ckpt_age = checkpoint_age(scrape).map_or_else(|| "-".into(), |age| format!("{age:.1}s"));
    println!(
        "state        cost ok={} degraded={}   checkpoint_age={ckpt_age}   backpressure={}",
        fmt_count(scrape.get("serve_ok_cost_total")),
        fmt_count(scrape.get("serve_degraded_cost_total")),
        scrape
            .get("serve_backpressure")
            .map_or_else(|| "-".into(), |v| format!("{:.0}%", v * 100.0)),
    );
    if let Some(journal) = journal {
        println!("journal tail:");
        for line in journal.lines() {
            println!("  {line}");
        }
    }
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "top",
        args,
        &["--addr", "--file", "--interval-ms", "--journal", "--raw"],
        &["--once"],
    )?;
    let addr = parse_flag::<String>(args, "--addr").transpose()?;
    let file = parse_flag::<String>(args, "--file").transpose()?;
    let source = match (addr, file) {
        (Some(a), None) => Source::Addr(a),
        (None, Some(f)) => Source::File(PathBuf::from(f)),
        _ => {
            return Err(CliError::Usage(
                "top needs exactly one of --addr HOST:PORT or --file PATH".into(),
            ))
        }
    };
    let interval = Duration::from_millis(
        parse_flag::<u64>(args, "--interval-ms")
            .transpose()?
            .unwrap_or(1000)
            .max(1),
    );
    let journal_rows = parse_flag::<usize>(args, "--journal")
        .transpose()?
        .unwrap_or(DEFAULT_JOURNAL_ROWS);
    let once = args.iter().any(|a| a == "--once");

    if let Some(what) = parse_flag::<String>(args, "--raw").transpose()? {
        let body = match what.as_str() {
            "metrics" => source.fetch_metrics(),
            "journal" => source
                .fetch_journal(journal_rows.max(1))
                .ok_or(CliError::Usage(
                    "--raw journal needs --addr (the file carries metrics only)".into(),
                ))?,
            _ => return Err(CliError::Usage("--raw takes metrics or journal".into())),
        }
        .map_err(|e| CliError::Runtime(format!("cannot reach daemon: {e}")))?;
        print!("{body}");
        return Ok(());
    }

    let mut connected = false;
    let mut prev: Option<(f64, f64)> = None;
    loop {
        let gone = |connected: bool, e: String| {
            if connected {
                CliError::Runtime(format!("daemon gone: {e}"))
            } else {
                CliError::Runtime(format!("cannot reach daemon: {e}"))
            }
        };
        let body = source.fetch_metrics().map_err(|e| gone(connected, e))?;
        let journal = match source.fetch_journal(journal_rows) {
            Some(r) => Some(r.map_err(|e| gone(connected, e))?),
            None => None,
        };
        connected = true;
        let scrape = Scrape::parse(&body);
        if !once {
            // Clear and home between frames (ANSI); the final frame of a
            // --once run prints plainly so it composes with pipes.
            print!("\x1b[2J\x1b[H");
        }
        render(&source.describe(), &scrape, prev, journal.as_deref());
        let _ = std::io::stdout().flush();
        if once {
            return Ok(());
        }
        prev = scrape
            .get("serve_scrape_t_mono")
            .zip(scrape.get("serve_admitted_total"));
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_parses_into_samples_and_buckets() {
        let text = "\
# TYPE serve_admitted_total counter
serve_admitted_total 200
# TYPE serve_admit_seconds histogram
serve_admit_seconds_bucket{le=\"0.000244140625\"} 180
serve_admit_seconds_bucket{le=\"0.0009765625\"} 198
serve_admit_seconds_bucket{le=\"+Inf\"} 200
serve_admit_seconds_sum 0.0123
serve_admit_seconds_count 200
serve_scrape_t_mono 4.5
";
        let s = Scrape::parse(text);
        assert_eq!(s.get("serve_admitted_total"), Some(200.0));
        assert_eq!(s.get("serve_scrape_t_mono"), Some(4.5));
        assert_eq!(s.get("serve_admit_seconds_count"), Some(200.0));
        assert_eq!(s.quantile("serve_admit_seconds", 0.5), Some(0.000244140625));
        assert_eq!(s.quantile("serve_admit_seconds", 0.99), Some(0.0009765625));
        assert_eq!(s.quantile("serve_admit_seconds", 1.0), Some(f64::INFINITY));
        assert_eq!(s.quantile("serve_nope", 0.5), None);
    }

    fn scrape_with(pairs: &[(&str, f64)]) -> Scrape {
        let mut s = Scrape::default();
        for &(name, v) in pairs {
            s.values.insert(name.to_string(), v);
        }
        s
    }

    /// The age is the difference of the two monotonic keys — and only
    /// those; wall-clock keys in the scrape must not influence it.
    #[test]
    fn checkpoint_age_reads_the_monotonic_keys() {
        let s = scrape_with(&[
            ("serve_scrape_t_mono", 40.5),
            ("serve_last_checkpoint_t_mono", 10.5),
            // A skewed wall clock must be irrelevant.
            ("serve_last_checkpoint_t", 9e9),
        ]);
        assert_eq!(checkpoint_age(&s), Some(30.0));
    }

    /// A checkpoint stamped after the scrape was cut reads negative raw;
    /// the rendered age clamps to zero rather than showing "-0.3s".
    #[test]
    fn checkpoint_age_clamps_negative_deltas_to_zero() {
        let s = scrape_with(&[
            ("serve_scrape_t_mono", 12.0),
            ("serve_last_checkpoint_t_mono", 12.3),
        ]);
        assert_eq!(checkpoint_age(&s), Some(0.0));
    }

    #[test]
    fn checkpoint_age_is_none_without_both_keys() {
        assert_eq!(checkpoint_age(&scrape_with(&[])), None);
        assert_eq!(
            checkpoint_age(&scrape_with(&[("serve_scrape_t_mono", 5.0)])),
            None
        );
        assert_eq!(
            checkpoint_age(&scrape_with(&[("serve_last_checkpoint_t_mono", 5.0)])),
            None
        );
    }
}

//! # dp-greedy-suite — one-stop façade for the DP_Greedy reproduction
//!
//! Re-exports the full workspace so examples and downstream users can
//! depend on a single crate:
//!
//! ```rust
//! use dp_greedy_suite::prelude::*;
//!
//! // Build the paper's running example and reproduce its total of 14.96.
//! let report = dp_greedy::paper_example::paper_report();
//! assert!((report.total_cost - 14.96).abs() < 1e-9);
//! ```
//!
//! Crate map (see `DESIGN.md` for the full inventory):
//!
//! * [`obs`] — observability: metrics registry, spans, decision ledger
//! * [`model`] — requests, cost model, schedules, validation
//! * [`correlation`] — Phase 1: Jaccard analysis and matching
//! * [`offline`] — the optimal off-line substrate of \[6\] + baselines
//! * [`dp_greedy`] — the paper's two-phase algorithm and baselines
//! * [`online`] — on-line extension (ski-rental family)
//! * [`engine`] — the solver registry: one `CachingSolver` trait over
//!   every algorithm, plus the shared `RunContext`/`Solution` types
//! * [`trace`] — synthetic Shenzhen-like taxi workloads
//! * [`serve`] — crash-safe serving daemon: WAL, checkpoints, degraded modes
//! * [`sim`] — event-driven schedule replay + fault injection
//! * [`experiments`] — figure/table runners for the evaluation section

#![warn(missing_docs)]

pub use dp_greedy;
pub use mcs_correlation as correlation;
pub use mcs_engine as engine;
pub use mcs_experiments as experiments;
pub use mcs_model as model;
pub use mcs_obs as obs;
pub use mcs_offline as offline;
pub use mcs_online as online;
pub use mcs_serve as serve;
pub use mcs_sim as sim;
pub use mcs_trace as trace;

/// Commonly used items, for glob import in examples.
pub mod prelude {
    pub use dp_greedy::baselines::{
        greedy_non_packing, optimal_non_packing, package_served, BaselineReport,
    };
    pub use dp_greedy::two_phase::{dp_greedy, dp_greedy_pair, DpGreedyConfig, DpGreedyReport};
    pub use mcs_correlation::{
        adaptive_theta, agglomerative_grouping, greedy_matching, k_packages_sparse, CoOccurrence,
        JaccardMatrix, PackageSet, Packing, SparseCoOccurrence,
    };
    pub use mcs_engine::{find, solvers, CachingSolver, RunContext, Solution};
    pub use mcs_model::{
        CostModel, CostModelBuilder, ItemId, Request, RequestSeq, RequestSeqBuilder, Schedule,
        ServerId,
    };
    pub use mcs_offline::{greedy::greedy, optimal};
    pub use mcs_sim::replay;
    pub use mcs_trace::workload::{generate, WorkloadConfig};
}

//! Cost-plane guarantees, end to end:
//!
//! * **Uniform collapse is invisible.** Every registry solver must be
//!   bit-identical — total-cost bits and ledger JSONL bytes — whether
//!   the `RunContext` carries the plain homogeneous model, its uniform
//!   heterogeneous embedding, or the single-unbounded-tier tiered
//!   embedding. This is the refactor's safety theorem: threading
//!   `CostPlane` through the engine changed no pre-plane number.
//! * The collapse also holds through the CLI across worker-thread
//!   counts (`MCS_THREADS ∈ {1, 2, 4}`), pinned on ledger files.
//! * Plane JSON round-trips for all three shapes, and malformed
//!   `--cost-model` files fail as positional usage errors (exit 2).

use std::path::PathBuf;
use std::process::Command;

use dp_greedy_suite::dp_greedy::paper_example;
use dp_greedy_suite::engine::{solvers, RunContext};
use dp_greedy_suite::model::json::{parse, FromJson, ToJson};
use dp_greedy_suite::model::rng::Rng;
use dp_greedy_suite::model::{
    CostModel, CostPlane, HeteroCostModel, RequestSeq, RequestSeqBuilder, StorageTier,
    TieredCostModel,
};

fn dpg() -> Command {
    let mut path = PathBuf::from(env!("CARGO_BIN_EXE_dpg"));
    if !path.exists() {
        path = PathBuf::from("target/debug/dpg");
    }
    Command::new(path)
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dpg-cost-plane-{tag}"))
}

/// The three collapse-equivalent spellings of `(model, m servers)`.
fn equivalent_planes(model: CostModel, m: u32) -> [CostPlane; 3] {
    [
        CostPlane::Homogeneous(model),
        CostPlane::Hetero(
            HeteroCostModel::uniform(m, model.mu(), model.lambda(), model.alpha())
                .expect("uniform embedding is valid"),
        ),
        CostPlane::Tiered(
            TieredCostModel::uniform_single_tier(m, model.mu(), model.lambda(), model.alpha())
                .expect("single-tier embedding is valid"),
        ),
    ]
}

fn random_sequence(rng: &mut Rng) -> RequestSeq {
    let servers = rng.gen_range(2u32..=5);
    let items = rng.gen_range(2u32..=4);
    let n = rng.gen_range(8usize..=16);
    let mut b = RequestSeqBuilder::new(servers, items);
    let mut t = 0.0;
    for _ in 0..n {
        t += 0.1 + rng.gen_f64() * 2.0;
        let server = rng.gen_range(0u32..servers);
        let first = rng.gen_range(0u32..items);
        let mut set = vec![first];
        if rng.gen_bool(0.4) {
            set.push((first + 1) % items);
        }
        b = b.push(server, t, set);
    }
    b.build().expect("generated sequence is valid")
}

/// Every registry solver — the 12 pre-plane ones and the 3 plane-aware
/// ones — produces bit-identical costs and byte-identical ledgers under
/// all three uniform spellings of the same rates.
#[test]
fn uniform_collapse_is_bit_identical_across_the_registry() {
    let mut rng = Rng::seed_from_u64(0xC057_11A0);
    let mut cases: Vec<(RequestSeq, CostModel, f64)> = vec![(
        paper_example::paper_sequence(),
        CostModel::paper_example(),
        paper_example::THETA,
    )];
    for _ in 0..4 {
        let seq = random_sequence(&mut rng);
        let model = CostModel::new(
            0.5 + rng.gen_f64() * 3.0,
            0.5 + rng.gen_f64() * 6.0,
            0.55 + rng.gen_f64() * 0.4,
        )
        .expect("generated model is valid");
        cases.push((seq, model, 0.3));
    }

    for (case, (seq, model, theta)) in cases.into_iter().enumerate() {
        let planes = equivalent_planes(model, seq.servers());
        for solver in solvers() {
            if solver
                .request_limit()
                .is_some_and(|l| seq.requests().len() > l)
            {
                continue;
            }
            // Each solver prices the planes it declares compatible
            // (`tiered_waterfall` cannot view a hetero plane as a
            // waterfall); every solver must accept the homogeneous one.
            let solutions: Vec<_> = planes
                .iter()
                .filter_map(|plane| {
                    let ctx = RunContext::from_plane(plane.clone()).with_theta(theta);
                    match solver.validate(&seq, &ctx) {
                        Ok(()) => Some((plane, solver.solve(&seq, &ctx))),
                        Err(_) => None,
                    }
                })
                .collect();
            assert!(
                solutions
                    .iter()
                    .any(|(plane, _)| plane.shape() == "homogeneous"),
                "case {case}: {} must accept the homogeneous plane",
                solver.name()
            );
            assert!(
                solutions.len() >= 2,
                "case {case}: {} accepts only one uniform spelling",
                solver.name()
            );
            let (_, reference) = &solutions[0];
            assert!(
                reference.reconciliation_gap() < 1e-9,
                "case {case}: {} gap {:.3e}",
                solver.name(),
                reference.reconciliation_gap()
            );
            for (plane, sol) in solutions.iter().skip(1) {
                assert_eq!(
                    reference.total_cost.to_bits(),
                    sol.total_cost.to_bits(),
                    "case {case}: {} cost differs under the {} plane",
                    solver.name(),
                    plane.shape()
                );
                assert_eq!(
                    reference.ledger().to_jsonl_string(),
                    sol.ledger().to_jsonl_string(),
                    "case {case}: {} ledger differs under the {} plane",
                    solver.name(),
                    plane.shape()
                );
            }
        }
    }
}

/// The collapse holds through the CLI and across worker-thread counts:
/// `dpg trace solve` over a generated trace writes byte-identical
/// ledgers with no `--cost-model`, a uniform hetero file, and a uniform
/// single-tier tiered file, at `MCS_THREADS ∈ {1, 2, 4}` — for the
/// parallel pre-plane path (`dpg`) and the plane-aware solvers.
#[test]
fn uniform_collapse_survives_the_cli_and_thread_counts() {
    let trace = temp_path("trace.json");
    let out = dpg()
        .args(["generate", "--out", trace.to_str().unwrap()])
        .args(["--steps", "120", "--seed", "11"])
        .output()
        .expect("run dpg generate");
    assert!(out.status.success());

    let file = dp_greedy_suite::trace::io::TraceFile::load(trace.to_str().unwrap())
        .expect("load generated trace");
    let m = file.sequence.servers();
    let defaults = dp_greedy_suite::model::defaults::default_model();
    let planes = equivalent_planes(defaults, m);

    let mut plane_files: Vec<Option<PathBuf>> = vec![None];
    for plane in &planes[1..] {
        let path = temp_path(&format!("{}.json", plane.shape()));
        std::fs::write(&path, plane.to_json().to_string_pretty()).expect("write plane file");
        plane_files.push(Some(path));
    }

    // Plane indices each solver can price: 0 = no flag (homogeneous),
    // 1 = uniform hetero file, 2 = uniform single-tier tiered file.
    // `tiered_waterfall` cannot view a hetero plane as a waterfall.
    for (algo, compatible) in [
        ("dpg", &[0usize, 1, 2][..]),
        ("hetero_greedy", &[0, 1, 2][..]),
        ("tiered_waterfall", &[0, 2][..]),
    ] {
        let mut ledgers: Vec<(String, String)> = Vec::new();
        for (i, plane_file) in plane_files.iter().enumerate() {
            if !compatible.contains(&i) {
                continue;
            }
            for threads in ["1", "2", "4"] {
                let ledger = temp_path(&format!("{algo}-{i}-{threads}.jsonl"));
                let mut cmd = dpg();
                cmd.args(["trace", "solve", trace.to_str().unwrap()])
                    .args(["--algo", algo, "--out", ledger.to_str().unwrap()])
                    .env("MCS_THREADS", threads);
                if let Some(path) = plane_file {
                    cmd.args(["--cost-model", path.to_str().unwrap()]);
                }
                let out = cmd.output().expect("run dpg trace solve");
                assert!(
                    out.status.success(),
                    "{algo} plane {i} threads {threads}: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
                let bytes = std::fs::read_to_string(&ledger).expect("read ledger");
                ledgers.push((format!("plane {i} threads {threads}"), bytes));
            }
        }
        let (ref_label, reference) = &ledgers[0];
        assert!(!reference.is_empty());
        for (label, bytes) in &ledgers[1..] {
            assert_eq!(
                reference, bytes,
                "{algo}: ledger at {label} differs from {ref_label}"
            );
        }
    }
}

/// All three plane shapes round-trip through their JSON encoding.
#[test]
fn plane_json_round_trips_for_all_shapes() {
    let hetero = HeteroCostModel::new(
        vec![1.0, 2.0, 4.0],
        vec![
            0.0, 1.5, 2.0, //
            1.5, 0.0, 3.0, //
            2.0, 3.0, 0.0,
        ],
        0.8,
    )
    .unwrap();
    let tiered = TieredCostModel::new(
        vec![vec![StorageTier::bounded(2, 4.0), StorageTier::unbounded(0.5)]; 3],
        vec![
            0.0, 1.5, 2.0, //
            1.5, 0.0, 3.0, //
            2.0, 3.0, 0.0,
        ],
        0.25,
        6.0,
        0.8,
    )
    .unwrap();
    for plane in [
        CostPlane::Homogeneous(CostModel::new(2.0, 4.0, 0.8).unwrap()),
        CostPlane::Hetero(hetero),
        CostPlane::Tiered(tiered),
    ] {
        let text = plane.to_json().to_string_pretty();
        let back = CostPlane::from_json(&parse(&text).expect("valid JSON")).expect("valid plane");
        assert_eq!(plane, back, "{} plane round-trips", plane.shape());
    }
}

/// Malformed `--cost-model` files are usage errors with a
/// `path:line:col` position; unreadable paths are runtime errors.
#[test]
fn malformed_cost_model_files_fail_with_positions() {
    // A syntax error on line 3: the parser reports where it stopped.
    let syntax = temp_path("syntax.json");
    std::fs::write(&syntax, "{\n  \"shape\": \"hetero\",\n  \"mu\": [1.0,]\n}").unwrap();
    let out = dpg()
        .args([
            "run",
            "--algo",
            "dpg",
            "--cost-model",
            syntax.to_str().unwrap(),
        ])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("syntax.json:3:"),
        "expected a line-3 position, got: {err}"
    );

    // Well-formed JSON, semantically invalid: still exit 2, pinned to
    // the file (validation failures have no token position → 1:1).
    let invalid = temp_path("invalid.json");
    std::fs::write(
        &invalid,
        r#"{"shape": "hetero", "mu": [1.0, -1.0], "lambda": [0.0, 2.0, 2.0, 0.0], "alpha": 0.8}"#,
    )
    .unwrap();
    let out = dpg()
        .args(["run", "--algo", "hetero_greedy"])
        .args(["--cost-model", invalid.to_str().unwrap()])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("invalid.json:1:1") && err.contains("invalid cost model"),
        "expected a validation error, got: {err}"
    );

    // Unreadable file: a well-formed invocation failing at runtime.
    let out = dpg()
        .args(["run", "--algo", "dpg", "--cost-model"])
        .arg(temp_path("does-not-exist.json"))
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(1));
}

/// Shape gating through the CLI: a non-collapsible plane is a usage
/// error for the homogeneous solvers and fine for the plane-aware ones;
/// `--mu` and friends conflict with `--cost-model`.
#[test]
fn non_collapsible_planes_gate_by_solver() {
    // The paper example runs on 4 servers; spread the μ rates so the
    // plane cannot collapse.
    let spread = temp_path("spread.json");
    let plane = CostPlane::Hetero(
        HeteroCostModel::new(
            vec![1.0, 2.0, 4.0, 8.0],
            {
                let mut lam = vec![1.0; 16];
                for i in 0..4 {
                    lam[i * 4 + i] = 0.0;
                }
                lam
            },
            0.8,
        )
        .unwrap(),
    );
    std::fs::write(&spread, plane.to_json().to_string_pretty()).unwrap();

    for (algo, expected) in [
        ("dpg", 2),
        ("optimal", 2),
        ("hetero_greedy", 0),
        ("hetero_exact", 0),
    ] {
        let out = dpg()
            .args([
                "run",
                "--algo",
                algo,
                "--cost-model",
                spread.to_str().unwrap(),
            ])
            .output()
            .expect("run dpg");
        assert_eq!(
            out.status.code(),
            Some(expected),
            "algo {algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let out = dpg()
        .args(["run", "--algo", "dpg", "--mu", "3"])
        .args(["--cost-model", spread.to_str().unwrap()])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("conflicts with --cost-model"));
}

//! Golden test for the registry-facing CLI: `dpg algos --json` must
//! mirror the `mcs-engine` registry exactly, and `dpg run --algo NAME`
//! must smoke-pass for every registered name under the usual exit-code
//! taxonomy (0 success, 1 runtime, 2 usage).

use std::path::PathBuf;
use std::process::Command;

use dp_greedy_suite::engine::{aliases, solvers};
use dp_greedy_suite::model::json::{parse, Json};

fn dpg() -> Command {
    let mut path = PathBuf::from(env!("CARGO_BIN_EXE_dpg"));
    if !path.exists() {
        path = PathBuf::from("target/debug/dpg");
    }
    Command::new(path)
}

#[test]
fn algos_json_matches_the_registry() {
    let out = dpg().args(["algos", "--json"]).output().expect("run dpg");
    assert_eq!(out.status.code(), Some(0));
    let doc = parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");

    let rows = doc
        .get("algos")
        .and_then(Json::as_arr)
        .expect("algos array");
    assert_eq!(rows.len(), solvers().len());
    for (row, solver) in rows.iter().zip(solvers()) {
        assert_eq!(
            row.get("name").and_then(Json::as_str),
            Some(solver.name()),
            "registry order must be preserved"
        );
        assert_eq!(
            row.get("kind").and_then(Json::as_str),
            Some(solver.kind().label())
        );
        assert_eq!(
            row.get("description").and_then(Json::as_str),
            Some(solver.description())
        );
        match solver.request_limit() {
            Some(l) => assert_eq!(
                row.get("request_limit").and_then(Json::as_f64),
                Some(l as f64)
            ),
            None => assert_eq!(row.get("request_limit"), Some(&Json::Null)),
        }
    }

    let alias_rows = doc
        .get("aliases")
        .and_then(Json::as_arr)
        .expect("aliases array");
    assert_eq!(alias_rows.len(), aliases().len());
    for (row, (alias, target)) in alias_rows.iter().zip(aliases()) {
        assert_eq!(row.get("alias").and_then(Json::as_str), Some(*alias));
        assert_eq!(row.get("target").and_then(Json::as_str), Some(*target));
    }
}

#[test]
fn run_smoke_passes_for_every_registered_solver() {
    // The 7-request paper example is under every request_limit, so each
    // registered name must solve, reconcile, and exit 0.
    for solver in solvers() {
        let out = dpg()
            .args(["run", "--algo", solver.name(), "--json"])
            .output()
            .expect("run dpg run");
        assert_eq!(
            out.status.code(),
            Some(0),
            "algo {}: {}",
            solver.name(),
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
        assert_eq!(
            doc.get("algo").and_then(Json::as_str),
            Some(solver.name()),
            "aliases resolve to the canonical name"
        );
        let gap = doc
            .get("reconciliation_gap")
            .and_then(Json::as_f64)
            .expect("gap field");
        assert!(gap < 1e-6, "algo {}: gap {gap}", solver.name());
    }
}

#[test]
fn run_follows_the_exit_code_taxonomy() {
    // Missing --algo and unknown names are usage errors (2).
    let out = dpg().arg("run").output().expect("run dpg");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--algo"));

    let out = dpg()
        .args(["run", "--algo", "definitely-not-a-solver"])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));

    // A good invocation that fails while running is a runtime error (1).
    let out = dpg()
        .args(["run", "--algo", "dpg", "/nonexistent/trace.json"])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(1));

    // The historical aliases still resolve.
    let out = dpg()
        .args(["run", "--algo", "dpg"])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("dp_greedy"));
}

#[test]
fn cost_model_failures_follow_the_exit_code_taxonomy() {
    // A malformed --cost-model file is a usage error (2), reported with
    // the file position; a missing file is a runtime error (1).
    let bad = std::env::temp_dir().join("dpg-cli-registry-bad-plane.json");
    std::fs::write(&bad, "{\"shape\": \"hetero\"").unwrap();
    let out = dpg()
        .args([
            "run",
            "--algo",
            "dpg",
            "--cost-model",
            bad.to_str().unwrap(),
        ])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("dpg-cli-registry-bad-plane.json:1:"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = dpg()
        .args([
            "run",
            "--algo",
            "dpg",
            "--cost-model",
            "/nonexistent/plane.json",
        ])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(1));

    // --cost-model with no value token is a usage error (2).
    let out = dpg()
        .args(["run", "--algo", "dpg", "--cost-model"])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--cost-model needs a value"));
}

//! Crash-recovery gate for `dpg serve`: SIGKILL the daemon mid-epoch,
//! restart it over the same input, and require the recovered state —
//! streaming statistics, placement, cumulative cost, every `f64` bit —
//! to be byte-identical to a run that never crashed. Also pins the
//! degraded modes (injected solver panic) and the malformed-line
//! reporting across a process boundary.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

use dp_greedy_suite::model::json::{parse, FromJson};
use dp_greedy_suite::serve::DaemonState;

fn dpg() -> Command {
    let mut path = PathBuf::from(env!("CARGO_BIN_EXE_dpg"));
    if !path.exists() {
        path = PathBuf::from("target/debug/dpg");
    }
    Command::new(path)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpg-serve-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A correlated workload: items 0/1 and 2/3 are frequent co-requests
/// (they should pack), 4 is independent. 40 requests → 5 epochs of 8.
fn workload() -> String {
    let mut s = String::from("# serve crash-recovery workload\nhello 4 5\n");
    for i in 0..40u32 {
        let t = 0.25 * f64::from(i + 1);
        let items = match i % 5 {
            0 | 3 => "0,1",
            1 => "2,3",
            2 => "0,1,4",
            _ => "4",
        };
        s.push_str(&format!("req {t:?} {} {items}\n", i % 4));
    }
    s
}

fn serve_args(dir: &std::path::Path, input: &std::path::Path) -> Vec<String> {
    vec![
        "serve".into(),
        "--dir".into(),
        dir.to_str().unwrap().into(),
        "--input".into(),
        input.to_str().unwrap().into(),
        "--epoch-len".into(),
        "8".into(),
        "--decay".into(),
        "0.9".into(),
        "--quiet".into(),
    ]
}

fn dump_state(dir: &std::path::Path) -> String {
    let out = dpg()
        .args([
            "serve",
            "--dir",
            dir.to_str().unwrap(),
            "--dump-state",
            "--quiet",
        ])
        .output()
        .expect("run dpg serve --dump-state");
    assert!(
        out.status.success(),
        "dump-state failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("canonical state is UTF-8")
}

#[test]
fn sigkill_mid_epoch_recovers_byte_identically() {
    let scratch = temp_dir("sigkill");
    let input = scratch.join("in.txt");
    std::fs::write(&input, workload()).unwrap();

    // Reference: the never-crashed run.
    let ref_dir = scratch.join("reference");
    let out = dpg()
        .args(serve_args(&ref_dir, &input))
        .output()
        .expect("reference serve run");
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = dump_state(&ref_dir);

    // Crash run: throttled so 40 requests take ~1.2 s, SIGKILLed at
    // ~0.4 s — mid-run, mid-epoch, possibly mid-write.
    let crash_dir = scratch.join("crashed");
    let mut args = serve_args(&crash_dir, &input);
    args.extend(["--throttle-us".into(), "30000".into()]);
    let mut child = dpg()
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn throttled serve");
    std::thread::sleep(Duration::from_millis(600));
    child.kill().expect("SIGKILL the daemon");
    let status = child.wait().expect("reap the daemon");
    assert!(!status.success(), "daemon should have died by signal");

    // The kill must have landed mid-run for the test to mean anything:
    // durable state exists but is short of the full 40 requests. (A very
    // slow machine may get killed before the first checkpoint — then the
    // WAL alone must already hold admissions.)
    if crash_dir.join("checkpoint.json").exists() {
        let partial = DaemonState::from_json(&parse(&dump_state(&crash_dir)).unwrap())
            .expect("partial state parses");
        assert!(
            partial.admitted < 40,
            "kill landed after the run finished; timing too coarse"
        );
    } else {
        let wal = std::fs::read_to_string(crash_dir.join("wal-0.log")).unwrap_or_default();
        assert!(
            !wal.is_empty(),
            "kill landed before any admission; timing too coarse"
        );
    }

    // Restart over the same input: WAL replay + stale-skip resume.
    let out = dpg()
        .args(serve_args(&crash_dir, &input))
        .output()
        .expect("recovery serve run");
    assert!(
        out.status.success(),
        "recovery run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let recovered = dump_state(&crash_dir);
    assert_eq!(
        recovered, reference,
        "recovered state must be byte-identical to the never-crashed run"
    );

    // Belt and braces: the bits, not just the bytes.
    let a = DaemonState::from_json(&parse(&recovered).unwrap()).unwrap();
    let b = DaemonState::from_json(&parse(&reference).unwrap()).unwrap();
    assert_eq!(a.cum_cost.to_bits(), b.cum_cost.to_bits());
    assert_eq!(a.placement_pairs, b.placement_pairs);
    assert_eq!(a.streaming, b.streaming);
    assert_eq!(a.epoch, 5);
    assert_eq!(a.admitted, 40);
    assert_eq!(a.degraded_epochs, Vec::<u64>::new());

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn injected_panic_degrades_one_epoch_and_serving_continues() {
    let scratch = temp_dir("panic");
    let input = scratch.join("in.txt");
    std::fs::write(&input, workload()).unwrap();
    let dir = scratch.join("state");
    let mut args = serve_args(&dir, &input);
    args.extend(["--inject-panic-epoch".into(), "2".into()]);
    let out = dpg().args(&args).output().expect("panic-injected serve");
    assert!(
        out.status.success(),
        "a solver panic must not kill the daemon: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let state = DaemonState::from_json(&parse(&dump_state(&dir)).unwrap()).unwrap();
    assert_eq!(state.degraded_epochs, vec![2]);
    assert_eq!(state.epoch, 5, "settlement continued past the panic");
    assert!(state.degraded_cost > 0.0);
    assert!(state.ok_cost > 0.0);
    // The ratio compares *different epochs'* workload mixes, so it can
    // land either side of 1.0 — pin that it is defined, positive, finite.
    let ratio = state
        .degradation_ratio()
        .expect("both epoch kinds settled, ratio defined");
    assert!(ratio.is_finite() && ratio > 0.0, "ratio {ratio}");
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn malformed_and_invalid_frames_are_reported_with_line_numbers_and_survived() {
    let scratch = temp_dir("badframes");
    let dir = scratch.join("state");
    let input = "hello 2 3\n\
                 req 1.0 0 0,1\n\
                 req nonsense 0 0\n\
                 req 2.0 7 0\n\
                 req 3.0 1 2\n";
    let mut child = dpg()
        .args(["serve", "--dir", dir.to_str().unwrap(), "--epoch-len", "8"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn stdin-fed serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("serve over stdin");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3: bad time"), "stderr: {err}");
    assert!(
        err.contains("line 4: rejected: server 7 out of range"),
        "stderr: {err}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("admitted=2") && stdout.contains("malformed=1"),
        "stdout: {stdout}"
    );
    let state = DaemonState::from_json(&parse(&dump_state(&dir)).unwrap()).unwrap();
    assert_eq!(state.admitted, 2);
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn handshake_mismatch_after_recovery_is_a_runtime_error() {
    let scratch = temp_dir("handshake");
    let input = scratch.join("in.txt");
    std::fs::write(&input, workload()).unwrap();
    let dir = scratch.join("state");
    assert!(dpg()
        .args(serve_args(&dir, &input))
        .output()
        .unwrap()
        .status
        .success());
    let other = scratch.join("other.txt");
    std::fs::write(&other, "hello 9 9\n").unwrap();
    let out = dpg()
        .args(serve_args(&dir, &other))
        .output()
        .expect("mismatched serve");
    assert_eq!(out.status.code(), Some(1), "runtime error, exit 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("does not match"), "stderr: {err}");
    std::fs::remove_dir_all(&scratch).ok();
}

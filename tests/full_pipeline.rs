//! End-to-end integration: synthetic city workload → Phase 1 correlation →
//! Phase 2 DP_Greedy → schedule replay in the simulator → figure runner.

use dp_greedy_suite::prelude::*;
use dp_greedy_suite::sim::replay;
use dp_greedy_suite::trace::stats::TraceStats;

fn workload() -> RequestSeq {
    let mut cfg = WorkloadConfig::paper_like(4242);
    cfg.steps = 700;
    generate(&cfg)
}

#[test]
fn pipeline_produces_replayable_schedules() {
    let seq = workload();
    let model = CostModel::new(2.0, 4.0, 0.8).unwrap();
    let config = DpGreedyConfig::new(model).with_theta(0.3);
    let report = dp_greedy(&seq, &config);

    assert!(
        !report.pairs.is_empty(),
        "paper-like workload must pack pairs"
    );

    // Every package schedule replays to exactly its reported C_12.
    let pkg_model = model.scaled_for_package();
    for pair in &report.pairs {
        let co = seq.package_trace(pair.a, pair.b);
        let rep = replay(&pair.package_schedule, &co).unwrap_or_else(|e| {
            panic!(
                "package schedule for ({}, {}) infeasible: {e}",
                pair.a, pair.b
            )
        });
        let replayed = rep.cost(pkg_model.mu(), pkg_model.lambda());
        assert!(
            (replayed - pair.package_cost).abs() < 1e-6,
            "pair ({}, {}): replayed {replayed} != reported {}",
            pair.a,
            pair.b,
            pair.package_cost
        );
    }

    // Every singleton schedule replays to its reported cost.
    for s in &report.singletons {
        let trace = seq.item_trace(s.item);
        let rep = replay(&s.schedule, &trace).expect("singleton schedule feasible");
        assert!((rep.cost(model.mu(), model.lambda()) - s.cost).abs() < 1e-6);
    }
}

#[test]
fn dp_greedy_beats_every_baseline_on_the_designed_workload() {
    let seq = workload();
    let model = CostModel::new(2.0, 4.0, 0.8).unwrap();
    let config = DpGreedyConfig::new(model).with_theta(0.3);

    let dpg = dp_greedy(&seq, &config).total_cost;
    let opt = optimal_non_packing(&seq, &model).total_cost;
    let grd = greedy_non_packing(&seq, &model).total_cost;

    assert!(dpg < opt, "DP_Greedy {dpg} should beat Optimal {opt}");
    assert!(opt < grd, "Optimal {opt} should beat plain Greedy {grd}");
}

#[test]
fn total_accesses_are_conserved_across_reports() {
    let seq = workload();
    let model = CostModel::new(2.0, 4.0, 0.8).unwrap();
    let report = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.3));
    let attributed: usize = report.pairs.iter().map(|p| p.accesses).sum::<usize>()
        + report.singletons.iter().map(|s| s.accesses).sum::<usize>();
    assert_eq!(attributed, report.total_accesses);
    assert_eq!(report.total_accesses, seq.total_item_accesses());

    let stats = TraceStats::from_sequence(&seq);
    assert_eq!(stats.item_accesses, report.total_accesses);
}

#[test]
fn figure_runners_smoke() {
    use dp_greedy_suite::experiments::{fig09, fig10, fig11, fig12};
    let mut cfg = WorkloadConfig::paper_like(4242);
    cfg.steps = 400;
    let f9 = fig09::run(&cfg);
    assert!(f9.requests > 100);
    let f10 = fig10::run(&cfg);
    assert_eq!(f10.spectrum.len(), 45);
    let f11 = fig11::run(&cfg);
    assert!(!f11.rows.is_empty());
    let f12 = fig12::run(&cfg, &[0.5, 2.0, 4.0]);
    assert_eq!(f12.rows.len(), 3);
}

//! Satellite pin: `dpg run --algo NAME` on a trace with zero requests
//! must produce the zero-cost empty solution — with an explicit stderr
//! warning — for *every* solver in the registry, instead of whatever
//! each algorithm's edge case happens to do.

use std::path::PathBuf;
use std::process::Command;

use dp_greedy_suite::engine::{aliases, solvers};

fn dpg() -> Command {
    let mut path = PathBuf::from(env!("CARGO_BIN_EXE_dpg"));
    if !path.exists() {
        path = PathBuf::from("target/debug/dpg");
    }
    Command::new(path)
}

fn empty_trace() -> PathBuf {
    let path = std::env::temp_dir().join(format!("dpg-empty-trace-{}.json", std::process::id()));
    std::fs::write(
        &path,
        "{\"version\": 1, \"config\": null, \
         \"sequence\": {\"servers\": 3, \"items\": 4, \"requests\": []}}",
    )
    .unwrap();
    path
}

#[test]
fn every_registered_solver_handles_an_empty_trace() {
    let path = empty_trace();
    let names = solvers()
        .iter()
        .map(|s| s.name())
        .chain(aliases().iter().map(|(alias, _)| *alias));
    for name in names {
        let out = dpg()
            .args(["run", "--algo", name, path.to_str().unwrap(), "--json"])
            .output()
            .expect("run dpg");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            out.status.success(),
            "{name} failed on the empty trace: {stderr}"
        );
        assert!(
            stderr.contains("contains no requests"),
            "{name}: missing the explicit warning, stderr: {stderr}"
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        for needle in [
            "\"total_cost\": 0",
            "\"ave_cost\": 0",
            "\"total_accesses\": 0",
            "\"reconciliation_gap\": 0",
        ] {
            assert!(stdout.contains(needle), "{name}: {needle} not in {stdout}");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_trace_text_mode_reports_zero_cost() {
    let path = empty_trace();
    let out = dpg()
        .args(["run", "--algo", "dp_greedy", path.to_str().unwrap()])
        .output()
        .expect("run dpg");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("total=0.0000") && stdout.contains("0 item accesses"),
        "stdout: {stdout}"
    );
    std::fs::remove_file(&path).ok();
}

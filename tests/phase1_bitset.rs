//! Workspace pin of the Phase-1 kernel equivalence: for every committed
//! trace fixture, every registry solver, every `MCS_PHASE1` kernel and
//! every `MCS_THREADS` count, the decision-ledger JSONL and the
//! `total_cost` bit pattern are byte-identical. The bitset kernel is an
//! *optimization*, never a behaviour change — this suite is what makes
//! `MCS_PHASE1=auto` safe to ship as the default.

use dp_greedy_suite::correlation::PHASE1_ENV;
use dp_greedy_suite::engine::{solvers, CachingSolver, RunContext};
use dp_greedy_suite::model::par::THREADS_ENV;
use dp_greedy_suite::model::{CostModel, RequestSeq};
use dp_greedy_suite::trace::io::TraceFile;

fn fixture_sequences() -> Vec<(String, RequestSeq)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/traces");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fixtures/traces unreadable: {e}"))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no trace fixtures committed");
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            (name, TraceFile::load(&p).unwrap().sequence)
        })
        .collect()
}

fn fingerprint(s: &dyn CachingSolver, seq: &RequestSeq, ctx: &RunContext) -> (String, u64) {
    let solution = s.solve(seq, ctx);
    (
        solution.ledger().to_jsonl_string(),
        solution.total_cost.to_bits(),
    )
}

/// The one test that mutates process environment — everything it varies
/// (`MCS_PHASE1`, `MCS_THREADS`) lives and dies inside this function, and
/// no other test in this binary touches either variable.
#[test]
fn every_solver_is_kernel_and_thread_invariant_on_every_fixture() {
    let ctx = RunContext::new(CostModel::new(1.0, 2.0, 0.7).unwrap()).with_theta(0.3);
    for (name, seq) in fixture_sequences() {
        for s in solvers() {
            if s.request_limit().is_some_and(|l| seq.len() > l) {
                continue;
            }
            std::env::set_var(PHASE1_ENV, "hash");
            std::env::set_var(THREADS_ENV, "1");
            let reference = fingerprint(*s, &seq, &ctx);
            for kernel in ["hash", "bitset", "auto"] {
                std::env::set_var(PHASE1_ENV, kernel);
                for threads in [1, 2, 4] {
                    std::env::set_var(THREADS_ENV, threads.to_string());
                    assert_eq!(
                        fingerprint(*s, &seq, &ctx),
                        reference,
                        "{name} / {} / {kernel} / {threads} threads diverged from \
                         the hash single-thread reference",
                        s.name()
                    );
                }
            }
        }
    }
    std::env::remove_var(PHASE1_ENV);
    std::env::remove_var(THREADS_ENV);
}

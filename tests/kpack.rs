//! Workspace-level guarantees of the K-package path (`dpg_k`):
//!
//! * **K = 2 reduction** — `dpg_k` at the default pairwise shape is
//!   bit-identical to `dp_greedy` (cost bits and ledger JSONL, modulo
//!   the `algo` label) on the paper example and on generated workloads,
//!   for every `MCS_THREADS` ∈ {1, 2, 4}.
//! * **Sparse ≡ dense** — the sparse agglomerative K-matcher packs
//!   exactly what the dense one packs for any θ ≥ 0 on random traces.
//! * **Adaptive θ** — deterministic, reconciled, and monotone in the
//!   observed co-request density.

use dp_greedy_suite::dp_greedy::paper_example;
use dp_greedy_suite::experiments::multi_exp::bundle_workload;
use dp_greedy_suite::model::par::THREADS_ENV;
use dp_greedy_suite::prelude::*;

/// Ledger JSONL with the solver label rewritten to `dp_greedy`, so the
/// K = 2 comparison is modulo the one field that must differ.
fn normalized_ledger(sol: &Solution) -> String {
    sol.ledger()
        .to_jsonl_string()
        .replace("\"algo\":\"dpg_k\"", "\"algo\":\"dp_greedy\"")
}

fn fixtures() -> Vec<(String, RequestSeq, RunContext)> {
    let mut out = Vec::new();
    out.push((
        "paper".to_string(),
        paper_example::paper_sequence(),
        RunContext::new(paper_example::paper_model()).with_theta(paper_example::THETA),
    ));
    for seed in [1u64, 7, 42] {
        let mut cfg = WorkloadConfig::small(seed);
        cfg.steps = 200;
        let model = CostModel::new(1.0, 2.0, 0.7).unwrap();
        out.push((
            format!("taxi-{seed}"),
            generate(&cfg),
            RunContext::new(model).with_theta(0.3),
        ));
    }
    for (seed, q) in [(3u64, 0.35), (9, 0.8)] {
        out.push((
            format!("bundle-{seed}"),
            bundle_workload(6, 2, 300, q, seed),
            RunContext::new(CostModel::new(2.0, 4.0, 0.8).unwrap()).with_theta(0.2),
        ));
    }
    out
}

/// The acceptance-criteria identity: `dpg_k --max-group 2` bit-identical
/// to `dp_greedy` on every fixture, across thread counts. Environment
/// mutation is confined to this one test; results are thread-invariant
/// by construction, so concurrent tests cannot observe a difference.
#[test]
fn k2_identity_across_fixtures_and_thread_counts() {
    let dpg = find("dp_greedy").unwrap();
    let kpack = find("dpg_k").unwrap();
    let mut baseline: Vec<(u64, String)> = Vec::new();
    for threads in ["1", "2", "4"] {
        std::env::set_var(THREADS_ENV, threads);
        for (i, (name, seq, ctx)) in fixtures().iter().enumerate() {
            assert_eq!(ctx.max_group, 2, "fixtures use the pairwise default");
            let a = dpg.solve(seq, ctx);
            let b = kpack.solve(seq, ctx);
            assert_eq!(
                a.total_cost.to_bits(),
                b.total_cost.to_bits(),
                "{name} @ {threads} threads: cost bits diverge"
            );
            let la = normalized_ledger(&a);
            let lb = normalized_ledger(&b);
            assert_eq!(la, lb, "{name} @ {threads} threads: ledger diverges");
            // Thread invariance: every thread count reproduces the
            // 1-thread fingerprint bit for bit.
            if threads == "1" {
                baseline.push((b.total_cost.to_bits(), lb));
            } else {
                assert_eq!(
                    (b.total_cost.to_bits(), lb),
                    baseline[i].clone(),
                    "{name}: {threads} threads diverge from serial"
                );
            }
        }
    }
    std::env::remove_var(THREADS_ENV);
}

/// Property: the sparse K-matcher equals the dense agglomerative
/// matcher for θ ≥ 0 — unobserved pairs have J = 0 under both backends.
#[test]
fn sparse_k_matching_equals_dense_on_random_traces() {
    for seed in 0..6u64 {
        let mut cfg = WorkloadConfig::small(0xC0FFEE + seed);
        cfg.steps = 150;
        let seq = generate(&cfg);
        let dense = JaccardMatrix::from_cooccurrence(&CoOccurrence::from_sequence(&seq));
        let sparse = SparseCoOccurrence::from_sequence(&seq);
        for theta in [0.0, 0.15, 0.3] {
            for max_group in [2usize, 3, 4, usize::MAX] {
                let d = agglomerative_grouping(&dense, theta, max_group);
                let s = k_packages_sparse(&sparse, theta, max_group);
                assert_eq!(d, s, "seed {seed}, theta {theta}, max_group {max_group}");
            }
        }
    }
}

/// The adaptive mode through the registry: deterministic, reconciled,
/// and θ decreases as co-request density increases.
#[test]
fn adaptive_mode_reconciles_and_tracks_density() {
    let solver = find("dpg_k").unwrap();
    let model = CostModel::new(2.0, 4.0, 0.8).unwrap();
    let ctx = RunContext::new(model)
        .with_max_group(4)
        .with_adaptive_theta();
    let sparse_seq = bundle_workload(6, 2, 300, 0.0, 11);
    let dense_seq = bundle_workload(6, 2, 300, 0.9, 11);
    for seq in [&sparse_seq, &dense_seq] {
        let a = solver.solve(seq, &ctx);
        let b = solver.solve(seq, &ctx);
        assert!(
            a.reconciliation_gap() < 1e-9,
            "gap {}",
            a.reconciliation_gap()
        );
        assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
        assert_eq!(a.ledger().to_jsonl_string(), b.ledger().to_jsonl_string());
    }
    let t_sparse = adaptive_theta(
        &SparseCoOccurrence::from_sequence(&sparse_seq),
        model.alpha(),
    );
    let t_dense = adaptive_theta(
        &SparseCoOccurrence::from_sequence(&dense_seq),
        model.alpha(),
    );
    assert!(
        t_dense < t_sparse,
        "denser co-access must relax θ: dense {t_dense} vs sparse {t_sparse}"
    );
}

/// The K = 2 view round-trips through the unified `PackageSet` without
/// loss, and the pairwise JSON shape is untouched by the redesign.
#[test]
fn package_set_round_trip_and_pair_json_shape() {
    let seq = paper_example::paper_sequence();
    let packing = greedy_matching(&JaccardMatrix::from_sequence(&seq), paper_example::THETA);
    let ps = PackageSet::from_packing(&packing);
    assert_eq!(ps.to_packing().unwrap(), packing);
    for i in 0..seq.items() {
        let id = ItemId(i);
        assert_eq!(ps.is_packed(id), packing.is_packed(id));
        assert_eq!(ps.partner(id), packing.partner(id));
    }
    // The legacy pair JSON shape (pairs/singletons/theta, no version
    // field) is byte-stable; the unified shape is versioned.
    use dp_greedy_suite::model::json::ToJson;
    let pair_json = packing.to_json().to_string();
    assert!(pair_json.contains("\"pairs\""));
    assert!(!pair_json.contains("\"version\""));
    let set_json = ps.to_json().to_string();
    assert!(set_json.contains("\"version\":1"));
    assert!(set_json.contains("\"packages\""));
}

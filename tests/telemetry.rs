//! The live telemetry plane, end to end: exposition golden bytes, the
//! bucketed-quantile error bound, the journal's recovery events, and the
//! `dpg top` exit taxonomy across a process boundary.
//!
//! Tests that touch the process-global metrics registry or journal
//! serialize on [`GLOBAL_OBS`] — `cargo test` runs tests in threads of
//! one process, and a concurrent `reset()` would race.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Mutex;

use dp_greedy_suite::obs::metrics::HistSummary;
use dp_greedy_suite::obs::{journal, prometheus_text, MetricsSnapshot};
use dp_greedy_suite::serve::{serve_stream, Daemon, ServeConfig};

static GLOBAL_OBS: Mutex<()> = Mutex::new(());

fn dpg() -> Command {
    let mut path = PathBuf::from(env!("CARGO_BIN_EXE_dpg"));
    if !path.exists() {
        path = PathBuf::from("target/debug/dpg");
    }
    Command::new(path)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpg-telemetry-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Satellite: the `/metrics` exposition is pinned byte for byte. The
/// histogram observations (0.125, 0.25, 2.0) are powers of two, so the
/// sum (2.375) and every bucket bound render exactly.
#[test]
fn metrics_exposition_golden_bytes() {
    let mut h = HistSummary::new();
    h.observe(0.25);
    h.observe(0.125);
    h.observe(2.0);
    let snap = MetricsSnapshot {
        counters: vec![("serve.admitted", 7)],
        fcounters: vec![("serve.ok_cost", 2.5)],
        gauges: vec![("serve.degradation_ratio", 0.25)],
        hists: vec![("serve.admit_seconds", h)],
    };
    let expected = "\
# TYPE serve_admitted_total counter
serve_admitted_total 7
# TYPE serve_ok_cost_total counter
serve_ok_cost_total 2.5
# TYPE serve_degradation_ratio gauge
serve_degradation_ratio 0.25
# TYPE serve_admit_seconds histogram
serve_admit_seconds_bucket{le=\"0.25\"} 1
serve_admit_seconds_bucket{le=\"0.5\"} 2
serve_admit_seconds_bucket{le=\"4\"} 3
serve_admit_seconds_bucket{le=\"+Inf\"} 3
serve_admit_seconds_sum 2.375
serve_admit_seconds_count 3
";
    assert_eq!(prometheus_text(&snap), expected);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Satellite: for random samples, the bucketed quantile estimate
/// brackets the exact sample quantile to within one log₂ bucket — the
/// estimate is an upper bound no more than 2× the exact value (and never
/// above the observed max, thanks to the min/max clamp).
#[test]
fn bucketed_quantiles_bracket_exact_quantiles_within_one_bucket() {
    let mut state = 0x5eed_u64;
    for trial in 0..50 {
        let n = 1 + (splitmix64(&mut state) % 400) as usize;
        let mut h = HistSummary::new();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            // Spread over ~12 orders of magnitude, away from the grid's
            // clamped extremes (the grid spans 2^-40 .. 2^24).
            let exp = (splitmix64(&mut state) % 40) as i32 - 30;
            let frac = (splitmix64(&mut state) % 1_000_000) as f64 / 1_000_000.0;
            let v = (1.0 + frac) * 2f64.powi(exp);
            h.observe(v);
            samples.push(v);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = samples[rank - 1];
            let est = h.quantile(q);
            assert!(
                exact <= est && est <= 2.0 * exact,
                "trial {trial} n={n} q={q}: exact {exact} not bracketed by estimate {est}"
            );
            assert!(
                est <= h.max,
                "trial {trial} q={q}: {est} above max {}",
                h.max
            );
        }
    }
}

/// Tentpole: recovery journals what it replayed. A stream of 10 requests
/// at epoch-len 4 settles epochs 0 and 1 and leaves 2 requests pending
/// in epoch 2's WAL; recovering that directory must journal a
/// `recovery-replay` event carrying exactly that epoch and count.
#[test]
fn recovery_journals_a_replay_event_with_the_recovered_epoch() {
    let _guard = GLOBAL_OBS.lock().unwrap();
    let dir = temp_dir("recovery-journal");
    let mut cfg = ServeConfig::new(dir.clone());
    cfg.epoch_len = 4;
    cfg.quiet = true;
    let mut input = String::from("hello 3 6\n");
    for i in 0..10 {
        // Times start at 1: admission rejects non-positive times.
        input.push_str(&format!("req {} {} {}\n", i + 1, i % 3, i % 6));
    }
    serve_stream(cfg.clone(), input.as_bytes()).expect("serve the stream");

    journal::reset();
    let daemon = Daemon::recover(cfg)
        .expect("recover")
        .expect("state exists");
    assert_eq!(daemon.current_state().epoch, 2);
    let tail = journal::tail_jsonl(usize::MAX);
    let replay: Vec<&str> = tail
        .lines()
        .filter(|l| l.contains("\"kind\":\"recovery-replay\""))
        .collect();
    assert_eq!(replay.len(), 1, "journal:\n{tail}");
    assert!(
        replay[0].contains("\"epoch\":2") && replay[0].contains("\"replayed\":2"),
        "unexpected replay event: {}",
        replay[0]
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: `dpg top` against nothing is a runtime failure (exit 1)
/// with a diagnostic, not a panic.
#[test]
fn top_exits_1_when_the_daemon_is_unreachable() {
    // Reserve a port, then close it so the connect is refused.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let out = dpg()
        .args(["top", "--addr", &addr.to_string(), "--once"])
        .output()
        .expect("run dpg top");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot reach daemon"), "{err}");
}

/// Satellite: once `dpg top` has connected, a daemon that vanishes
/// between polls produces a "daemon gone" diagnostic and exit 1 — never
/// a panic. A throwaway listener answers exactly one poll (one /metrics
/// and one /journal scrape), then goes away.
#[test]
fn top_reports_daemon_gone_after_a_successful_poll() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        for _ in 0..2 {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 512];
            let _ = stream.read(&mut buf);
            let body = "serve_scrape_t_mono 1.5\n";
            let _ = stream.write_all(
                format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
        }
        // Listener drops here: the next poll's connect is refused.
    });
    let out = dpg()
        .args(["top", "--addr", &addr.to_string(), "--interval-ms", "50"])
        .output()
        .expect("run dpg top");
    server.join().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("daemon gone"), "{err}");
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert!(rendered.contains("dpg top"), "{rendered}");
}

/// Tentpole: the whole plane across a process boundary — `dpg serve
/// --telemetry-file` publishes an exposition that `dpg top --file`
/// renders, and `dpg serve --dump-journal` prints recovery's journal.
#[test]
fn serve_publishes_telemetry_file_and_dump_journal_prints_events() {
    let dir = temp_dir("cli-plane");
    std::fs::create_dir_all(&dir).unwrap();
    let stream_path = dir.join("stream.txt");
    let tele_path = dir.join("tele.prom");
    let mut input = String::from("hello 3 6\n");
    for i in 0..20 {
        input.push_str(&format!("req {} {} {}\n", i + 1, i % 3, i % 6));
    }
    std::fs::write(&stream_path, input).unwrap();

    let state_dir = dir.join("state");
    let out = dpg()
        .args([
            "serve",
            "--dir",
            state_dir.to_str().unwrap(),
            "--input",
            stream_path.to_str().unwrap(),
            "--epoch-len",
            "8",
            "--telemetry-file",
            tele_path.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("run dpg serve");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let exposition = std::fs::read_to_string(&tele_path).unwrap();
    assert!(exposition.contains("serve_admit_seconds_bucket{le=\""));
    assert!(exposition.contains("serve_degradation_ratio"));
    assert!(exposition.contains("serve_scrape_t_mono"));

    let out = dpg()
        .args(["top", "--file", tele_path.to_str().unwrap(), "--once"])
        .output()
        .expect("run dpg top");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert!(rendered.contains("admission"), "{rendered}");
    assert!(rendered.contains("degradation_ratio="), "{rendered}");

    let out = dpg()
        .args([
            "serve",
            "--dir",
            state_dir.to_str().unwrap(),
            "--dump-journal",
        ])
        .output()
        .expect("run dpg serve --dump-journal");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let journal = String::from_utf8_lossy(&out.stdout);
    // 20 requests at epoch-len 8: epochs 0 and 1 settled, 4 pending in
    // epoch 2 — recovery replays those 4.
    assert!(
        journal
            .lines()
            .any(|l| l.contains("\"kind\":\"recovery-replay\"")
                && l.contains("\"epoch\":2")
                && l.contains("\"replayed\":4")),
        "{journal}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! Property test: on random workloads, every algorithm's decision ledger
//! reconciles with its reported total cost.
//!
//! The ledger (`dp_greedy::ledger`) is *derived* from algorithm outputs,
//! so `Σ event.cost == total_cost` is a structural invariant of those
//! outputs — intervals priced at `μ·len`, transfers at `λ`, serve events
//! at the chosen arm's real cost — not a logging convention. This file
//! fuzzes it across random sequences, cost models, and thresholds for
//! DP_Greedy, the simple-greedy baseline, and the optimal yardstick.

use dp_greedy::baselines::{greedy_non_packing, optimal_non_packing};
use dp_greedy::ledger::{dp_greedy_ledger, greedy_ledger, optimal_ledger};
use dp_greedy::two_phase::{dp_greedy, DpGreedyConfig};
use mcs_model::rng::Rng;
use mcs_model::{CostModel, RequestSeq, RequestSeqBuilder};

const TOL: f64 = 1e-9;

/// A random valid sequence: 3–6 servers, 2–6 items, 20–60 requests with
/// strictly increasing times and 1–2 items each.
fn random_sequence(rng: &mut Rng) -> RequestSeq {
    let servers = rng.gen_range(3u32..=6);
    let items = rng.gen_range(2u32..=6);
    let n = rng.gen_range(20usize..=60);
    let mut b = RequestSeqBuilder::new(servers, items);
    let mut t = 0.0;
    for _ in 0..n {
        t += 0.1 + rng.gen_f64() * 2.0;
        let server = rng.gen_range(0u32..servers);
        let first = rng.gen_range(0u32..items);
        let mut set = vec![first];
        if rng.gen_bool(0.45) {
            let second = rng.gen_range(0u32..items);
            if second != first {
                set.push(second);
            }
        }
        b = b.push(server, t, set);
    }
    b.build().expect("generated sequence is valid")
}

fn random_model(rng: &mut Rng) -> CostModel {
    let mu = 0.5 + rng.gen_f64() * 4.0;
    let lambda = 0.5 + rng.gen_f64() * 8.0;
    let alpha = 0.55 + rng.gen_f64() * 0.44;
    CostModel::new(mu, lambda, alpha).expect("generated model is valid")
}

#[test]
fn ledgers_reconcile_with_reports_on_random_workloads() {
    let mut rng = Rng::seed_from_u64(0x1ed6e7);
    for case in 0..40 {
        let seq = random_sequence(&mut rng);
        let model = random_model(&mut rng);
        let theta = rng.gen_f64() * 0.8;
        let config = DpGreedyConfig::new(model).with_theta(theta);

        let dpg = dp_greedy(&seq, &config);
        let ledger = dp_greedy_ledger(&dpg, &model);
        let diff = (ledger.total_cost() - dpg.total_cost).abs();
        assert!(
            diff < TOL,
            "case {case}: dp_greedy ledger {} vs report {} (diff {diff:e})",
            ledger.total_cost(),
            dpg.total_cost
        );
        // The three-channel breakdown partitions the events completely.
        let b = ledger.breakdown();
        assert!(
            (b.total() - ledger.total_cost()).abs() < TOL,
            "case {case}: breakdown {} vs ledger {}",
            b.total(),
            ledger.total_cost()
        );

        let opt = optimal_non_packing(&seq, &model);
        let opt_ledger = optimal_ledger(&seq, &model);
        assert!(
            (opt_ledger.total_cost() - opt.total_cost).abs() < TOL,
            "case {case}: optimal ledger {} vs report {}",
            opt_ledger.total_cost(),
            opt.total_cost
        );
        // The non-packing baselines never use the package channel.
        assert!(opt_ledger.breakdown().package_delivery == 0.0);

        let gre = greedy_non_packing(&seq, &model);
        let gre_ledger = greedy_ledger(&seq, &model);
        assert!(
            (gre_ledger.total_cost() - gre.total_cost).abs() < TOL,
            "case {case}: greedy ledger {} vs report {}",
            gre_ledger.total_cost(),
            gre.total_cost
        );
        assert!(gre_ledger.breakdown().package_delivery == 0.0);
    }
}

#[test]
fn serve_events_always_pick_the_cheapest_feasible_arm() {
    let mut rng = Rng::seed_from_u64(0xa2b);
    for _ in 0..10 {
        let seq = random_sequence(&mut rng);
        let model = random_model(&mut rng);
        let config = DpGreedyConfig::new(model).with_theta(0.1);
        let ledger = dp_greedy_ledger(&dp_greedy(&seq, &config), &model);
        for e in ledger.events.iter().filter(|e| e.phase == "phase2.serve") {
            let min = e.option_costs.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(min.is_finite(), "at least one arm is always feasible");
            assert!(
                (e.cost - min).abs() < 1e-12,
                "serve event paid {} but the cheapest arm was {min}",
                e.cost
            );
        }
    }
}

//! Property test: on random workloads, every registered solver's decision
//! ledger reconciles with its reported total cost.
//!
//! The ledger is *derived* from a solver's [`Solution`] by the engine's
//! generic `Solution::ledger()`, so `Σ event.cost == total_cost` is a
//! structural invariant of those outputs — intervals priced at `μ·len`,
//! transfers at `λ`, serve events at the chosen arm's real cost — not a
//! logging convention. This file fuzzes it across random sequences, cost
//! models, and thresholds for the whole `mcs-engine` registry, so a
//! newly registered solver is covered automatically.

use dp_greedy_suite::engine::{solvers, RunContext, SolverKind};
use dp_greedy_suite::model::fault::FaultPlan;
use mcs_model::rng::Rng;
use mcs_model::{CostModel, RequestSeq, RequestSeqBuilder};

const TOL: f64 = 1e-9;

/// A random valid sequence: 3–6 servers, 2–6 items, `min_n`–`max_n`
/// requests with strictly increasing times and 1–2 items each.
fn random_sequence(rng: &mut Rng, min_n: usize, max_n: usize) -> RequestSeq {
    let servers = rng.gen_range(3u32..=6);
    let items = rng.gen_range(2u32..=6);
    let n = rng.gen_range(min_n..=max_n);
    let mut b = RequestSeqBuilder::new(servers, items);
    let mut t = 0.0;
    for _ in 0..n {
        t += 0.1 + rng.gen_f64() * 2.0;
        let server = rng.gen_range(0u32..servers);
        let first = rng.gen_range(0u32..items);
        let mut set = vec![first];
        if rng.gen_bool(0.45) {
            let second = rng.gen_range(0u32..items);
            if second != first {
                set.push(second);
            }
        }
        b = b.push(server, t, set);
    }
    b.build().expect("generated sequence is valid")
}

fn random_model(rng: &mut Rng) -> CostModel {
    let mu = 0.5 + rng.gen_f64() * 4.0;
    let lambda = 0.5 + rng.gen_f64() * 8.0;
    let alpha = 0.55 + rng.gen_f64() * 0.44;
    CostModel::new(mu, lambda, alpha).expect("generated model is valid")
}

#[test]
fn every_registered_solver_reconciles_on_random_workloads() {
    let mut rng = Rng::seed_from_u64(0x1ed6e7);
    // The tightest request_limit in the registry bounds the workload so
    // no solver is silently skipped.
    let cap = solvers()
        .iter()
        .filter_map(|s| s.request_limit())
        .min()
        .unwrap_or(usize::MAX)
        .min(60);
    for case in 0..25 {
        let seq = random_sequence(&mut rng, 8, cap);
        let model = random_model(&mut rng);
        let theta = rng.gen_f64() * 0.8;
        let ctx = RunContext::new(model)
            .with_theta(theta)
            .with_fault_plan(FaultPlan::random(
                case as u64,
                seq.servers(),
                seq.horizon(),
                0.1,
                1.0,
                0.1,
            ));

        for solver in solvers() {
            let sol = solver.solve(&seq, &ctx);
            assert_eq!(sol.algo, solver.name());
            let ledger = sol.ledger();
            let diff = (ledger.total_cost() - sol.total_cost).abs();
            assert!(
                diff < TOL,
                "case {case}: {} ledger {} vs report {} (diff {diff:e})",
                solver.name(),
                ledger.total_cost(),
                sol.total_cost
            );
            // The three-channel breakdown partitions the events completely.
            let b = ledger.breakdown();
            assert!(
                (b.total() - ledger.total_cost()).abs() < TOL,
                "case {case}: {} breakdown {} vs ledger {}",
                solver.name(),
                b.total(),
                ledger.total_cost()
            );
            // The off-line solvers account every item access of the input.
            if solver.kind() == SolverKind::Offline {
                assert_eq!(
                    sol.total_accesses,
                    seq.total_item_accesses(),
                    "case {case}: {}",
                    solver.name()
                );
            }
            // The non-packing per-item baselines never use the package channel.
            if matches!(
                solver.name(),
                "optimal" | "optimal_fast" | "greedy" | "exhaustive" | "ski_rental" | "resilient"
            ) {
                assert_eq!(b.package_delivery, 0.0, "case {case}: {}", solver.name());
            }
        }
    }
}

#[test]
fn serve_events_always_pick_the_cheapest_feasible_arm() {
    let mut rng = Rng::seed_from_u64(0xa2b);
    let solver = dp_greedy_suite::engine::find("dp_greedy").expect("registered");
    for _ in 0..10 {
        let seq = random_sequence(&mut rng, 20, 60);
        let model = random_model(&mut rng);
        let ctx = RunContext::new(model).with_theta(0.1);
        let ledger = solver.solve(&seq, &ctx).ledger();
        for e in ledger.events.iter().filter(|e| e.phase == "phase2.serve") {
            let min = e.option_costs.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(min.is_finite(), "at least one arm is always feasible");
            assert!(
                (e.cost - min).abs() < 1e-12,
                "serve event paid {} but the cheapest arm was {min}",
                e.cost
            );
        }
    }
}

//! Paper-fidelity assertions through the public façade: every number the
//! paper states that our implementation can state back.

use dp_greedy_suite::dp_greedy::paper_example;
use dp_greedy_suite::prelude::*;

#[test]
fn running_example_total_is_14_96() {
    let report = paper_example::paper_report();
    assert!((report.total_cost - 14.96).abs() < 1e-9);
    assert!((report.ave_cost() - 1.496).abs() < 1e-9);
}

#[test]
fn running_example_component_costs() {
    let report = paper_example::paper_report();
    let pair = &report.pairs[0];
    assert!((pair.jaccard - 3.0 / 7.0).abs() < 1e-12);
    assert!((pair.package_cost - 8.96).abs() < 1e-9);
    assert!((pair.a_singleton_cost - 3.1).abs() < 1e-9);
    assert!((pair.b_singleton_cost - 2.9).abs() < 1e-9);
}

#[test]
fn fig1_cost_formula() {
    // Fig. 1: C = (1.4 + 3.5 + 0.3)μ + 4λ for the illustrated schedule.
    let mut s = Schedule::new();
    s.cache(ServerId(0), 0.0, 1.4)
        .cache(ServerId(1), 0.5, 4.0)
        .cache(ServerId(2), 3.7, 4.0)
        .transfer(ServerId(0), ServerId(1), 0.5)
        .transfer(ServerId(1), ServerId(2), 3.7)
        .transfer(ServerId(0), ServerId(3), 1.4)
        .transfer(ServerId(1), ServerId(3), 2.2);
    let c = s.cost(1.0, 1.0);
    assert!((c.cache_time - 5.2).abs() < 1e-12);
    assert_eq!(c.transfers, 4);
}

#[test]
fn table_2_package_rates() {
    let m = CostModel::new(1.0, 1.0, 0.8).unwrap();
    // k = 1: no discount.
    assert_eq!(m.cache_rate_package(1), m.cache_rate_individual(1));
    // k = 2: αkμ and αkλ.
    assert!((m.cache_rate_package(2) - 1.6).abs() < 1e-12);
    assert!((m.transfer_cost_package(2) - 1.6).abs() < 1e-12);
    // Observation 2's constant: 2αλ.
    assert!((m.package_delivery_cost() - 1.6).abs() < 1e-12);
}

#[test]
fn eq_1_serving_cost() {
    // C_ij = (t_j − t_i)μ + ελ with ε = [s_i ≠ s_j]; +∞ otherwise.
    let m = CostModel::new(1.0, 1.0, 0.8).unwrap();
    assert!((m.c_ij(1.5, 2.6, true) - 1.1).abs() < 1e-12); // cache
    assert!((m.c_ij(1.4, 2.6, false) - 2.2).abs() < 1e-12); // cache + transfer
    assert!(m.c_ij(2.6, 1.4, true).is_infinite());
}

#[test]
fn eq_5_jaccard_on_the_example() {
    let seq = paper_example::paper_sequence();
    let co = CoOccurrence::from_sequence(&seq);
    assert_eq!(co.count(ItemId(0)), 5);
    assert_eq!(co.count(ItemId(1)), 5);
    assert_eq!(co.pair_count(ItemId(0), ItemId(1)), 3);
    assert!((co.jaccard(ItemId(0), ItemId(1)) - 3.0 / 7.0).abs() < 1e-12);
}

#[test]
fn theorem_1_bound_value() {
    // 2/α at the paper's α = 0.8 is 2.5.
    let m = CostModel::new(1.0, 1.0, 0.8).unwrap();
    assert!((m.approximation_bound() - 2.5).abs() < 1e-12);
}

#[test]
fn section_v_prescan_example() {
    use dp_greedy_suite::dp_greedy::prescan::PreScan;
    let seq = paper_example::paper_sequence();
    let union = seq.union_trace(ItemId(0), ItemId(1));
    let ps = PreScan::build(&union);
    // Fig. 8: following A[7] (the 4.0 request) back on its server reaches
    // the 0.8 request, whose pointer array identifies intervals
    // {[0, 1.4], [0.5, 2.6], ∅, ∅}.
    let iv = ps.covering_intervals(6);
    assert_eq!(iv[0], Some((0.0, 1.4)));
    assert_eq!(iv[1], Some((0.5, 2.6)));
    assert_eq!(iv[2], None);
    assert_eq!(iv[3], None);
}

#[test]
fn complexity_claim_shapes() {
    // Not a timing test (criterion covers that): check the advertised
    // growth indirectly — doubling n roughly quadruples the number of
    // long-interval edges the covering DP may relax, while the pre-scan
    // stays linear in n·m by construction (its arena is n nodes of m
    // pointers each). Here we just assert the structures scale without
    // blowup on a 5k-request trace.
    use dp_greedy_suite::dp_greedy::prescan::PreScan;
    let pairs: Vec<(f64, u32)> = (1..=5000)
        .map(|i| (i as f64 * 0.1, (i % 50) as u32))
        .collect();
    let trace = dp_greedy_suite::model::request::SingleItemTrace::from_pairs(50, &pairs);
    let ps = PreScan::build(&trace);
    assert_eq!(ps.len(), 5000);
    let model = CostModel::new(1.0, 1.0, 0.8).unwrap();
    let out = optimal(&trace, &model);
    assert!(out.cost.is_finite());
    assert_eq!(out.decisions.len(), 5000);
}

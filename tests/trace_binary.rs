//! Workspace-level guarantees of the binary (`DPGB`) trace format:
//!
//! * **Round trip** — every committed fixture under `fixtures/traces/`
//!   survives JSON → binary → JSON bit-exactly (times compared as raw
//!   `f64` bit patterns).
//! * **Solve equivalence** — solving the packed copy produces
//!   byte-identical decision-ledger JSONL and `total_cost` bits to
//!   solving the JSON original, for every `MCS_THREADS` ∈ {1, 2, 4}.
//! * **Corruption** — truncated or tampered binary files are rejected
//!   with a diagnostic, never admitted or panicked on.

use dp_greedy_suite::engine::{find, RunContext};
use dp_greedy_suite::model::par::THREADS_ENV;
use dp_greedy_suite::model::CostModel;
use dp_greedy_suite::trace::io::{TraceFile, TraceIoError};

/// Every committed trace fixture. Empty would silently gut the suite,
/// so it asserts.
fn fixture_paths() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/traces");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fixtures/traces unreadable: {e}"))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no trace fixtures committed");
    paths
}

fn pack_to_temp(file: &TraceFile, name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dpg-trace-binary-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.dpgb"));
    file.save_binary(&path).unwrap();
    path
}

#[test]
fn every_fixture_round_trips_bit_exactly() {
    for path in fixture_paths() {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let original = TraceFile::load(&path).unwrap();
        let packed = pack_to_temp(&original, &name);
        let back = TraceFile::load(&packed).unwrap();
        assert_eq!(original, back, "{name}: binary round trip diverged");
        for (a, b) in original
            .sequence
            .requests()
            .iter()
            .zip(back.sequence.requests())
        {
            assert_eq!(a.time.to_bits(), b.time.to_bits(), "{name}: time bits");
        }
        std::fs::remove_file(&packed).ok();
    }
}

/// The acceptance-criteria identity: a packed fixture must solve to
/// byte-identical output. Environment mutation is confined to this one
/// test; results are thread-invariant by construction, so concurrent
/// tests cannot observe a difference.
#[test]
fn packed_fixtures_solve_byte_identically_across_thread_counts() {
    let solver = find("dp_greedy").unwrap();
    let ctx = RunContext::new(CostModel::new(1.0, 2.0, 0.7).unwrap()).with_theta(0.3);
    for path in fixture_paths() {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let original = TraceFile::load(&path).unwrap();
        let packed_path = pack_to_temp(&original, &format!("solve-{name}"));
        let packed = TraceFile::load(&packed_path).unwrap();
        let mut reference: Option<(String, u64)> = None;
        for threads in [1, 2, 4] {
            std::env::set_var(THREADS_ENV, threads.to_string());
            let from_json = solver.solve(&original.sequence, &ctx);
            let from_binary = solver.solve(&packed.sequence, &ctx);
            let json_print = (
                from_json.ledger().to_jsonl_string(),
                from_json.total_cost.to_bits(),
            );
            let binary_print = (
                from_binary.ledger().to_jsonl_string(),
                from_binary.total_cost.to_bits(),
            );
            assert_eq!(
                json_print, binary_print,
                "{name} @ {threads} threads: packed trace solved differently"
            );
            match &reference {
                None => reference = Some(json_print),
                Some(r) => assert_eq!(r, &json_print, "{name} @ {threads} threads: not invariant"),
            }
        }
        std::env::remove_var(THREADS_ENV);
        std::fs::remove_file(&packed_path).ok();
    }
}

#[test]
fn truncated_and_tampered_binaries_are_rejected() {
    let original = TraceFile::load(&fixture_paths()[0]).unwrap();
    let mut bytes = Vec::new();
    original.write_binary_to(&mut bytes).unwrap();

    // Truncation anywhere past the magic — header, records, entries.
    for cut in [4usize, 10, 40, 60, bytes.len() - 3] {
        let err = TraceFile::read_from(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, TraceIoError::Binary { .. }),
            "cut at {cut}: expected Binary error, got {err}"
        );
    }
    // A cut inside the magic itself can't be identified as binary; it
    // still fails cleanly (as JSON), never panics or half-parses.
    TraceFile::read_from(&bytes[..2]).unwrap_err();

    // A record time zeroed out violates strict time monotonicity and
    // must be caught by the builder's revalidation.
    let mut tampered = bytes.clone();
    tampered[48 + 24..48 + 32].copy_from_slice(&0f64.to_bits().to_le_bytes());
    let err = TraceFile::read_from(tampered.as_slice()).unwrap_err();
    assert!(
        err.to_string().contains("invalid request sequence"),
        "{err}"
    );

    // An unknown future version is a Version error, not a decode attempt.
    let mut versioned = bytes;
    versioned[4..8].copy_from_slice(&7u32.to_le_bytes());
    let err = TraceFile::read_from(versioned.as_slice()).unwrap_err();
    assert!(matches!(err, TraceIoError::Version { found: 7 }), "{err}");
}

//! Cross-algorithm invariants exercised through the public façade on
//! seeded workloads: ordering relations between algorithms, cost-model
//! scaling laws, and the theorem-level bounds.

use dp_greedy_suite::dp_greedy::ratio::{packed_exact_optimal, ratio_check};
use dp_greedy_suite::offline::statespace::statespace_optimal;
use dp_greedy_suite::online::ski_rental::ski_rental;
use dp_greedy_suite::prelude::*;

fn small_city(seed: u64) -> RequestSeq {
    let mut cfg = WorkloadConfig::small(seed);
    cfg.steps = 250;
    generate(&cfg)
}

#[test]
fn algorithm_ordering_chain_per_item() {
    // optimal ≤ ski-rental ≤ always-available bounds, per item trace.
    for seed in [1u64, 2, 3] {
        let seq = small_city(seed);
        let model = CostModel::new(1.0, 2.0, 0.8).unwrap();
        for i in 0..seq.items() {
            let trace = seq.item_trace(ItemId(i));
            let opt = optimal(&trace, &model).cost;
            let grd = greedy(&trace, &model).cost;
            let online = ski_rental(&trace, &model).cost;
            assert!(opt <= grd + 1e-9, "seed {seed} item {i}");
            assert!(grd <= 2.0 * opt + 1e-9, "seed {seed} item {i}");
            assert!(opt <= online + 1e-9, "seed {seed} item {i}");
            assert!(online <= 3.0 * opt + 1e-9, "seed {seed} item {i}");
        }
    }
}

#[test]
fn statespace_confirms_dp_on_real_workload_slices() {
    // Take a small city (m = 12 exceeds the state-space limit, so shrink)
    // and confirm the covering DP against the physics-level solver.
    let mut cfg = WorkloadConfig::small(5);
    cfg.grid = dp_greedy_suite::trace::city::CityGrid { rows: 1, cols: 4 };
    cfg.steps = 60;
    let seq = generate(&cfg);
    let model = CostModel::new(1.0, 1.5, 0.8).unwrap();
    for i in 0..seq.items() {
        let trace = seq.item_trace(ItemId(i));
        if trace.len() > 14 {
            continue; // keep the exponential solver fast
        }
        let dp = optimal(&trace, &model).cost;
        let ss = statespace_optimal(&trace, &model);
        assert!((dp - ss).abs() < 1e-9, "item {i}: dp={dp} ss={ss}");
    }
}

#[test]
fn theorem_1_on_workload_pairs() {
    // The 2/α bound on a real (small) workload pair with an exactly
    // solvable packed optimum.
    let mut cfg = WorkloadConfig::small(9);
    cfg.grid = dp_greedy_suite::trace::city::CityGrid { rows: 1, cols: 3 };
    cfg.steps = 30;
    cfg.taxis = 2;
    cfg.pair_affinity = vec![0.7];
    let seq = generate(&cfg);
    let model = CostModel::new(1.0, 1.0, 0.8).unwrap();
    let config = DpGreedyConfig::new(model);
    let check = ratio_check(&seq, ItemId(0), ItemId(1), &config);
    assert!(check.exact > 0.0);
    assert!(
        check.ratio <= check.bound + 1e-9,
        "ratio {} > bound {}",
        check.ratio,
        check.bound
    );
}

#[test]
fn lemma_1_on_workload_pairs() {
    let mut cfg = WorkloadConfig::small(13);
    cfg.grid = dp_greedy_suite::trace::city::CityGrid { rows: 1, cols: 3 };
    cfg.steps = 30;
    cfg.taxis = 2;
    cfg.pair_affinity = vec![0.5];
    let seq = generate(&cfg);
    let model = CostModel::new(1.0, 1.0, 0.6).unwrap();
    let exact = packed_exact_optimal(&seq, ItemId(0), ItemId(1), &model);
    let o1 = optimal(&seq.item_trace(ItemId(0)), &model).cost;
    let o2 = optimal(&seq.item_trace(ItemId(1)), &model).cost;
    assert!(exact >= model.alpha() * (o1 + o2) - 1e-9);
}

#[test]
fn uniform_rate_scaling_is_exactly_linear_end_to_end() {
    // Scaling (μ, λ) by c scales every algorithm's cost by c — the law
    // behind the 2α package trick, verified through the whole pipeline.
    let seq = small_city(17);
    let base = CostModel::new(1.0, 2.0, 0.8).unwrap();
    let scaled = CostModel::new(3.0, 6.0, 0.8).unwrap();
    let r1 = dp_greedy(&seq, &DpGreedyConfig::new(base).with_theta(0.3));
    let r2 = dp_greedy(&seq, &DpGreedyConfig::new(scaled).with_theta(0.3));
    assert!(
        (r2.total_cost - 3.0 * r1.total_cost).abs() < 1e-6,
        "{} vs {}",
        r2.total_cost,
        3.0 * r1.total_cost
    );
    // The packing decision is rate-invariant.
    assert_eq!(r1.packing.pairs, r2.packing.pairs);
}

#[test]
fn theta_zero_packs_maximally_and_theta_one_packs_nothing() {
    let seq = small_city(23);
    let model = CostModel::new(1.0, 2.0, 0.8).unwrap();
    let all = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.0));
    let none = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(1.0));
    assert!(!all.packing.pairs.is_empty());
    assert!(none.packing.pairs.is_empty());
    let opt = optimal_non_packing(&seq, &model);
    assert!((none.total_cost - opt.total_cost).abs() < 1e-6);
}

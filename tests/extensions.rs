//! Integration tests for the extension modules through the public façade:
//! mutual-consistency relations that must hold across crates on a real
//! city workload.

use dp_greedy_suite::dp_greedy::multi_item::{dp_greedy_multi, MultiItemConfig};
use dp_greedy_suite::dp_greedy::windowed::{dp_greedy_windowed, WindowedConfig};
use dp_greedy_suite::online::capacity::{capacity_run, EvictionPolicy};
use dp_greedy_suite::online::online_dpg::{online_dp_greedy, OnlineDpgConfig};
use dp_greedy_suite::online::ski_rental::ski_rental;
use dp_greedy_suite::prelude::*;

fn city() -> RequestSeq {
    let mut cfg = WorkloadConfig::paper_like(99);
    cfg.steps = 500;
    generate(&cfg)
}

#[test]
fn multi_item_with_pair_cap_matches_pairwise_on_the_city() {
    let seq = city();
    let model = CostModel::new(2.0, 4.0, 0.8).unwrap();
    let pairwise = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.3));
    let multi = dp_greedy_multi(
        &seq,
        &MultiItemConfig::new(model)
            .with_theta(0.3)
            .with_max_group(2),
    );
    // Same θ on the same statistics: Phase 1 picks the same pairs, so the
    // costs coincide whenever the agglomerative and matching orders agree
    // — which they do for disjoint high-affinity taxi pairs.
    let pairs_pw: Vec<_> = pairwise.packing.pairs.clone();
    let pairs_mi: Vec<_> = multi
        .packages
        .packages
        .iter()
        .filter(|g| g.len() == 2)
        .map(|g| (g[0], g[1]))
        .collect();
    assert_eq!(pairs_pw, pairs_mi);
    assert!(
        (pairwise.total_cost - multi.total_cost).abs() < 1e-6,
        "pairwise {} vs capped multi {}",
        pairwise.total_cost,
        multi.total_cost
    );
}

#[test]
fn windowed_with_one_giant_window_matches_global() {
    let seq = city();
    let model = CostModel::new(2.0, 4.0, 0.8).unwrap();
    let cfg = DpGreedyConfig::new(model).with_theta(0.3);
    let global = dp_greedy(&seq, &cfg);
    let windowed = dp_greedy_windowed(
        &seq,
        &WindowedConfig {
            inner: cfg,
            window: seq.horizon() + 1.0,
        },
    );
    assert_eq!(windowed.windows.len(), 1);
    assert!((windowed.total_cost - global.total_cost).abs() < 1e-6);
}

#[test]
fn online_dpg_at_alpha_one_is_blind_ski_rental_on_the_city() {
    let seq = city();
    let model = CostModel::new(2.0, 4.0, 1.0).unwrap();
    let online = online_dp_greedy(&seq, &OnlineDpgConfig::new(model));
    let blind: f64 = (0..seq.items())
        .map(|i| ski_rental(&seq.item_trace(ItemId(i)), &model).cost)
        .sum();
    assert!(
        (online.cost - blind).abs() < 1e-6,
        "online {} vs blind {}",
        online.cost,
        blind
    );
    assert_eq!(online.package_transfers, 0);
}

#[test]
fn cost_oriented_dominates_capacity_oriented_on_the_city() {
    let seq = city();
    let model = CostModel::new(2.0, 4.0, 0.8).unwrap();
    let dpg = dp_greedy(&seq, &DpGreedyConfig::new(model).with_theta(0.3)).total_cost;
    for cap in [1usize, 4] {
        for policy in [EvictionPolicy::Lru, EvictionPolicy::GreedyDual] {
            let out = capacity_run(&seq, &model, cap, policy);
            assert!(
                dpg < out.cost,
                "DP_Greedy {dpg} should beat {policy:?}@{cap} = {}",
                out.cost
            );
        }
    }
}

#[test]
fn online_hierarchy_offline_le_online_le_three_x() {
    let seq = city();
    let model = CostModel::new(2.0, 4.0, 0.8).unwrap();
    for i in 0..seq.items() {
        let trace = seq.item_trace(ItemId(i));
        let off = optimal(&trace, &model).cost;
        let on = ski_rental(&trace, &model).cost;
        assert!(off <= on + 1e-9, "item {i}");
        assert!(on <= 3.0 * off + 1e-9, "item {i}: {on} > 3·{off}");
    }
}

//! End-to-end test of the `dpg` command-line tool: generate → stats →
//! solve, exercising the trace IO format across a process boundary.

use std::path::PathBuf;
use std::process::Command;

fn dpg() -> Command {
    // Cargo builds the binary next to the test executable's parent dir.
    let mut path = PathBuf::from(env!("CARGO_BIN_EXE_dpg"));
    if !path.exists() {
        path = PathBuf::from("target/debug/dpg");
    }
    Command::new(path)
}

fn temp_trace_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dpg-cli-test-{tag}.json"))
}

#[test]
fn example_subcommand_prints_the_paper_total() {
    let out = dpg().arg("example").output().expect("run dpg example");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("14.96"), "missing total in: {text}");
}

#[test]
fn generate_stats_solve_round_trip() {
    let path = temp_trace_path("roundtrip");
    let out = dpg()
        .args([
            "generate",
            "--out",
            path.to_str().unwrap(),
            "--steps",
            "200",
            "--seed",
            "5",
        ])
        .output()
        .expect("run dpg generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(path.exists());

    let out = dpg()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .expect("run dpg stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("requests"));
    assert!(text.contains("top pairs by Jaccard"));

    for algo in ["dpg", "optimal", "greedy", "package", "multi"] {
        let out = dpg()
            .args(["solve", path.to_str().unwrap(), "--algo", algo])
            .output()
            .expect("run dpg solve");
        assert!(
            out.status.success(),
            "algo {algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("ave_cost"), "algo {algo}: {text}");
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn svg_subcommand_writes_a_drawing() {
    let trace_path = temp_trace_path("svg");
    let svg_path = std::env::temp_dir().join("dpg-cli-test.svg");
    dpg()
        .args([
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--steps",
            "100",
        ])
        .output()
        .expect("generate");
    let out = dpg()
        .args([
            "svg",
            trace_path.to_str().unwrap(),
            "--out",
            svg_path.to_str().unwrap(),
            "--item",
            "1",
        ])
        .output()
        .expect("run dpg svg");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("<circle"));
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&svg_path).ok();
}

#[test]
fn solve_rejects_unknown_algorithms_and_missing_files() {
    let out = dpg()
        .args(["solve", "/nonexistent/trace.json"])
        .output()
        .expect("run dpg");
    assert!(!out.status.success());

    let path = temp_trace_path("badalgo");
    dpg()
        .args(["generate", "--out", path.to_str().unwrap(), "--steps", "50"])
        .output()
        .expect("generate");
    let out = dpg()
        .args(["solve", path.to_str().unwrap(), "--algo", "nope"])
        .output()
        .expect("run dpg");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn no_args_prints_usage() {
    let out = dpg().output().expect("run dpg");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

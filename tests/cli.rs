//! End-to-end test of the `dpg` command-line tool: generate → stats →
//! solve, exercising the trace IO format across a process boundary.

use std::path::PathBuf;
use std::process::Command;

fn dpg() -> Command {
    // Cargo builds the binary next to the test executable's parent dir.
    let mut path = PathBuf::from(env!("CARGO_BIN_EXE_dpg"));
    if !path.exists() {
        path = PathBuf::from("target/debug/dpg");
    }
    Command::new(path)
}

fn temp_trace_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dpg-cli-test-{tag}.json"))
}

#[test]
fn example_subcommand_prints_the_paper_total() {
    let out = dpg().arg("example").output().expect("run dpg example");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("14.96"), "missing total in: {text}");
}

#[test]
fn generate_stats_solve_round_trip() {
    let path = temp_trace_path("roundtrip");
    let out = dpg()
        .args([
            "generate",
            "--out",
            path.to_str().unwrap(),
            "--steps",
            "200",
            "--seed",
            "5",
        ])
        .output()
        .expect("run dpg generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(path.exists());

    let out = dpg()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .expect("run dpg stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("requests"));
    assert!(text.contains("top pairs by Jaccard"));

    for algo in ["dpg", "optimal", "greedy", "package", "multi"] {
        let out = dpg()
            .args(["solve", path.to_str().unwrap(), "--algo", algo])
            .output()
            .expect("run dpg solve");
        assert!(
            out.status.success(),
            "algo {algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("ave_cost"), "algo {algo}: {text}");
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn svg_subcommand_writes_a_drawing() {
    let trace_path = temp_trace_path("svg");
    let svg_path = std::env::temp_dir().join("dpg-cli-test.svg");
    dpg()
        .args([
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--steps",
            "100",
        ])
        .output()
        .expect("generate");
    let out = dpg()
        .args([
            "svg",
            trace_path.to_str().unwrap(),
            "--out",
            svg_path.to_str().unwrap(),
            "--item",
            "1",
        ])
        .output()
        .expect("run dpg svg");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("<circle"));
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&svg_path).ok();
}

#[test]
fn solve_rejects_unknown_algorithms_and_missing_files() {
    let out = dpg()
        .args(["solve", "/nonexistent/trace.json"])
        .output()
        .expect("run dpg");
    assert!(!out.status.success());

    let path = temp_trace_path("badalgo");
    dpg()
        .args(["generate", "--out", path.to_str().unwrap(), "--steps", "50"])
        .output()
        .expect("generate");
    let out = dpg()
        .args(["solve", path.to_str().unwrap(), "--algo", "nope"])
        .output()
        .expect("run dpg");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn no_args_prints_usage() {
    let out = dpg().output().expect("run dpg");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn usage_errors_exit_2_and_runtime_errors_exit_1() {
    // No arguments / unknown command / unknown flag → usage (2).
    let out = dpg().output().expect("run dpg");
    assert_eq!(out.status.code(), Some(2));

    let out = dpg().arg("frobnicate").output().expect("run dpg");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error: unknown command"));

    let out = dpg()
        .args(["chaos", "--bogus", "1"])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("error: unknown flag --bogus for `dpg chaos`"),
        "{err}"
    );

    let out = dpg()
        .args(["solve", "--mu"]) // flag without value
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(2));

    // A well-formed invocation that fails while running → runtime (1).
    let out = dpg()
        .args(["stats", "/nonexistent/trace.json"])
        .output()
        .expect("run dpg");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).starts_with("error: "));

    // Explicit help is not an error.
    let out = dpg().arg("--help").output().expect("run dpg");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn chaos_subcommand_is_deterministic_for_a_fixed_seed() {
    let run = || {
        dpg()
            .args([
                "chaos",
                "--seed",
                "7",
                "--fault-rate",
                "0.1",
                "--steps",
                "300",
            ])
            .output()
            .expect("run dpg chaos")
    };
    let a = run();
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let text = String::from_utf8_lossy(&a.stdout).to_string();
    assert!(text.contains("degradation ratio"), "{text}");
    assert!(text.contains("mean time to repair"), "{text}");
    let b = run();
    assert_eq!(
        text,
        String::from_utf8_lossy(&b.stdout),
        "chaos output must be reproducible"
    );
}

#[test]
fn version_subcommand_and_flag_exit_zero() {
    for argv in [&["version"][..], &["--version"], &["-V"]] {
        let out = dpg().args(argv).output().expect("run dpg version");
        assert_eq!(out.status.code(), Some(0), "argv {argv:?}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.starts_with(concat!("dpg ", env!("CARGO_PKG_VERSION"))),
            "argv {argv:?}: {text}"
        );
    }
}

#[test]
fn trace_solve_writes_deterministic_jsonl_that_reconciles() {
    let trace_path = temp_trace_path("trace-solve");
    dpg()
        .args([
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--steps",
            "200",
            "--seed",
            "11",
        ])
        .output()
        .expect("generate");

    let run = |tag: &str| {
        let out_path = std::env::temp_dir().join(format!("dpg-cli-test-ledger-{tag}.jsonl"));
        let out = dpg()
            .args([
                "trace",
                "solve",
                trace_path.to_str().unwrap(),
                "--algo",
                "dpg",
                "--out",
                out_path.to_str().unwrap(),
                "--metrics",
            ])
            .output()
            .expect("run dpg trace solve");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        let jsonl = std::fs::read_to_string(&out_path).expect("ledger written");
        std::fs::remove_file(&out_path).ok();
        (stdout, jsonl)
    };

    let (stdout, jsonl) = run("a");
    assert!(stdout.contains("reconciles with DP_Greedy"), "{stdout}");
    assert!(stdout.contains("breakdown:"), "{stdout}");
    assert!(stdout.contains("-- metrics"), "{stdout}");
    // Every line is one event with the fixed key order.
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"algo\":\"dp_greedy\""), "{line}");
        assert!(line.contains("\"option_chosen\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    // Byte-determinism: a second run emits the identical ledger.
    let (_, jsonl2) = run("b");
    assert_eq!(jsonl, jsonl2, "trace output must be byte-deterministic");
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn trace_example_reproduces_the_paper_breakdown() {
    let out_path = std::env::temp_dir().join("dpg-cli-test-ledger-example.jsonl");
    let out = dpg()
        .args(["trace", "example", "--out", out_path.to_str().unwrap()])
        .output()
        .expect("run dpg trace example");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("14.96"), "{text}");
    std::fs::remove_file(&out_path).ok();

    // `trace` without a known mode is a usage error.
    let out = dpg().arg("trace").output().expect("run dpg trace");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn chaos_rejects_out_of_range_fault_rates() {
    let out = dpg()
        .args(["chaos", "--fault-rate", "1.5"])
        .output()
        .expect("run dpg chaos");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--fault-rate"));
}
